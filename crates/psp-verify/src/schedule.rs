//! Independent validation of a PSP [`Schedule`].
//!
//! The scheduler proves each elementary transformation legal *as it makes
//! the move* ([`psp_core::deps`]); this module instead re-derives, from the
//! final schedule alone, the facts that must hold if every move was legal:
//!
//! * every flattened source operation survives as at least one instance,
//!   its clones sit on pairwise-disjoint paths, and together they still
//!   cover every path the original executed on;
//! * within one iteration frame, naive sequential register semantics hold
//!   (reads after their reaching definition plus latency, writes after
//!   reads, writes in order) — the transformations that legitimately break
//!   the naive rules (induction combining) are recognized syntactically,
//!   exactly the way the scheduler recognizes them, and skipped;
//! * memory accesses and the BREAK protocol are checked across frames with
//!   the pass-time model: an instance with iteration index `i` executes
//!   the work of original iteration `j` during pass `j - i`, so for one
//!   original iteration a *larger* index means *earlier* execution;
//! * an instance constrained on a predicate its row cannot yet know is
//!   speculative and must be a speculable operation;
//! * each row's same-class instances that can co-execute (pairwise
//!   non-disjoint paths) must fit the machine's issue width.
//!
//! Everything is computed with freshly built **sparse** predicate matrices
//! ([`psp_predicate::backend::with_backend`]), so the bit-packed algebra
//! and its interner — used by the scheduler — are out of the trusted base.

use crate::violation::{CycleSite, Violation};
use psp_core::Schedule;
use psp_ir::{
    analysis::{mem_access, AccessKind, MemAccess},
    flatten, AluOp, LoopSpec, OpKind, Operand, Operation, Reg, RegRef, ResClass,
};
use psp_machine::MachineConfig;
use psp_predicate::{backend::with_backend, OutcomeMap, PredicateMatrix};

/// One schedule instance with its freshly rebuilt sparse matrices.
struct Inst<'a> {
    row: usize,
    inner: &'a psp_core::Instance,
    /// Formal path set, current-pass coordinates, sparse backend.
    formal: PredicateMatrix,
    /// Formal path set shifted to original-iteration coordinates
    /// (column 0 = the instance's own iteration).
    iter: PredicateMatrix,
}

impl Inst<'_> {
    fn prog(&self) -> (usize, u16) {
        (self.inner.origin, self.inner.late)
    }
    /// Same-original-iteration execution order: pass `j - index`, then row.
    fn executes_strictly_before(&self, other: &Inst) -> bool {
        self.inner.index > other.inner.index
            || (self.inner.index == other.inner.index && self.row < other.row)
    }
    fn describe(&self) -> String {
        format!("row {}: {}", self.row, self.inner)
    }
}

/// Validate a schedule against its source spec and machine.
pub fn validate_schedule(
    spec: &LoopSpec,
    machine: &MachineConfig,
    sched: &Schedule,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let insts: Vec<Inst> = sched
        .rows
        .iter()
        .enumerate()
        .flat_map(|(row, r)| r.iter().map(move |inner| (row, inner)))
        .map(|(row, inner)| Inst {
            row,
            inner,
            formal: sparse_shift(&inner.formal, 0),
            iter: sparse_shift(&inner.formal, -inner.index),
        })
        .collect();

    origins(spec, &insts, &mut out);
    register_order(machine, &insts, &mut out);
    memory_and_breaks(spec, &insts, &mut out);
    speculation(machine, &insts, &mut out);
    row_resources(machine, sched, &insts, &mut out);
    out
}

/// Rebuild a matrix on the sparse backend, shifting columns by `delta`.
fn sparse_shift(m: &PredicateMatrix, delta: i32) -> PredicateMatrix {
    let entries: Vec<(u32, i32, bool)> =
        m.constrained().map(|(r, c, v)| (r, c + delta, v)).collect();
    with_backend(false, || PredicateMatrix::from_entries(entries))
}

// --- source coverage ---------------------------------------------------

fn origins(spec: &LoopSpec, insts: &[Inst], out: &mut Vec<Violation>) {
    let flat = flatten(spec);
    for (o, f) in flat.iter().enumerate() {
        let mine: Vec<&Inst> = insts.iter().filter(|i| i.inner.origin == o).collect();
        // Movement fixes leave behind fresh COPY instances at the mover's
        // origin; everything else must keep the original operation kind.
        let real: Vec<&&Inst> = mine
            .iter()
            .filter(|i| {
                std::mem::discriminant(&i.inner.op.kind) == std::mem::discriminant(&f.op.kind)
            })
            .collect();
        for i in &mine {
            let is_fix_copy = matches!(i.inner.op.kind, OpKind::Copy { .. })
                && !matches!(f.op.kind, OpKind::Copy { .. });
            let is_real =
                std::mem::discriminant(&i.inner.op.kind) == std::mem::discriminant(&f.op.kind);
            if !is_fix_copy && !is_real {
                out.push(Violation::Contract {
                    detail: format!(
                        "origin {o} ({}) has an instance of foreign kind: {}",
                        f.op,
                        i.describe()
                    ),
                });
            }
        }
        if real.is_empty() {
            out.push(Violation::DroppedOp {
                origin: o,
                detail: f.op.to_string(),
            });
            continue;
        }
        for (ai, a) in real.iter().enumerate() {
            for b in real.iter().skip(ai + 1) {
                if !a.iter.is_disjoint(&b.iter) {
                    out.push(Violation::DoubleExecution {
                        origin: o,
                        detail: format!("{} and {}", a.describe(), b.describe()),
                    });
                }
            }
        }
        coverage(o, &f.ctrl, &real, out);
        if let Some(pr) = f.computes_if {
            for i in &real {
                if i.inner.computes_if != Some(pr) {
                    out.push(Violation::IfLogMismatch {
                        detail: format!(
                            "origin {o} computes predicate row {pr} but instance records {:?}: {}",
                            i.inner.computes_if,
                            i.describe()
                        ),
                    });
                }
                if i.inner.op.kind != f.op.kind {
                    out.push(Violation::IfLogMismatch {
                        detail: format!(
                            "IF of origin {o} changed condition: source {} vs {}",
                            f.op,
                            i.describe()
                        ),
                    });
                }
            }
        }
    }
}

/// Exhaustively check that the union of `real` path sets covers `ctrl`.
/// Capped at 12 free predicates (4096 concrete paths); larger origins are
/// skipped — the validator is naive by design, not complete.
fn coverage(o: usize, ctrl: &PredicateMatrix, real: &[&&Inst], out: &mut Vec<Violation>) {
    let mut keys: Vec<(u32, i32)> = Vec::new();
    let add = |m: &PredicateMatrix, keys: &mut Vec<(u32, i32)>| {
        for (r, c, _) in m.constrained() {
            if !keys.contains(&(r, c)) {
                keys.push((r, c));
            }
        }
    };
    add(ctrl, &mut keys);
    for i in real {
        add(&i.iter, &mut keys);
    }
    if keys.len() > 12 {
        return;
    }
    for bits in 0u32..(1 << keys.len()) {
        let mut om = OutcomeMap::new();
        for (j, &(r, c)) in keys.iter().enumerate() {
            om.set(r, c, bits & (1 << j) != 0);
        }
        if ctrl.admits(&om) && !real.iter().any(|i| i.iter.admits(&om)) {
            out.push(Violation::Coverage {
                origin: o,
                detail: om
                    .iter()
                    .map(|(r, c, v)| format!("({r},{c})={}", v as u8))
                    .collect::<Vec<_>>()
                    .join(" "),
            });
            return;
        }
    }
}

// --- register semantics within one frame -------------------------------

/// `r = r + imm` / `r = imm + r` / `r = r - imm`: the update form the
/// scheduler's displacement combining recognizes.
fn is_induction_update(op: &Operation, r: Reg) -> bool {
    match op.kind {
        OpKind::Alu {
            op: AluOp::Add,
            dst,
            a,
            b,
        } => {
            dst == r
                && ((a == Operand::Reg(r) && matches!(b, Operand::Imm(_)))
                    || (matches!(a, Operand::Imm(_)) && b == Operand::Reg(r)))
        }
        OpKind::Alu {
            op: AluOp::Sub,
            dst,
            a,
            b,
        } => dst == r && a == Operand::Reg(r) && matches!(b, Operand::Imm(_)),
        _ => false,
    }
}

/// Whether `op` uses `r` exclusively as a memory address index — the
/// consumer side of displacement combining.
fn uses_only_as_index(op: &Operation, r: Reg) -> bool {
    match op.kind {
        OpKind::Load { dst, addr } => addr.index == Some(r) && dst != r,
        OpKind::Store { src, addr } => addr.index == Some(r) && src != Operand::Reg(r),
        _ => false,
    }
}

fn register_order(machine: &MachineConfig, insts: &[Inst], out: &mut Vec<Violation>) {
    for (ai, a) in insts.iter().enumerate() {
        for (bi, b) in insts.iter().enumerate() {
            if ai == bi || a.inner.index != b.inner.index || a.prog() >= b.prog() {
                continue;
            }
            // a is program-earlier than b within the same frame.
            if a.iter.is_disjoint(&b.iter) {
                continue;
            }
            let (a_defs, a_uses) = (a.inner.op.defs(), a.inner.op.uses());
            let (b_defs, b_uses) = (b.inner.op.defs(), b.inner.op.uses());
            for d in &a_defs {
                if b_uses.contains(d) {
                    let exempt = matches!(d, RegRef::Gpr(r)
                        if is_induction_update(&a.inner.op, *r)
                            && uses_only_as_index(&b.inner.op, *r));
                    let lat = machine.latency(&a.inner.op) as usize;
                    if !exempt && !shadowed(insts, a, b, d) && b.row < a.row + lat {
                        out.push(Violation::RegisterOrder {
                            kind: "flow",
                            reg: *d,
                            index: a.inner.index,
                            early_row: a.row,
                            late_row: b.row,
                            detail: format!("{} feeds {}", a.describe(), b.describe()),
                        });
                    }
                }
                if b_defs.contains(d) && b.row <= a.row {
                    out.push(Violation::RegisterOrder {
                        kind: "output",
                        reg: *d,
                        index: a.inner.index,
                        early_row: a.row,
                        late_row: b.row,
                        detail: format!("{} then {}", a.describe(), b.describe()),
                    });
                }
            }
            for u in &a_uses {
                if b_defs.contains(u) {
                    let exempt = matches!(u, RegRef::Gpr(r)
                        if is_induction_update(&b.inner.op, *r)
                            && uses_only_as_index(&a.inner.op, *r));
                    if !exempt && b.row < a.row {
                        out.push(Violation::RegisterOrder {
                            kind: "anti",
                            reg: *u,
                            index: a.inner.index,
                            early_row: a.row,
                            late_row: b.row,
                            detail: format!("{} read before {}", a.describe(), b.describe()),
                        });
                    }
                }
            }
        }
    }
}

/// Whether some definition of `d` between `a` and `b` (program order, same
/// frame) shadows `a`'s value on every path `a` and `b` share — then the
/// `a -> b` flow is not live and transitivity covers the ordering.
fn shadowed(insts: &[Inst], a: &Inst, b: &Inst, d: &RegRef) -> bool {
    let Some(cond) = a.iter.conjoin(&b.iter) else {
        return true; // disjoint: nothing to check
    };
    insts.iter().any(|w| {
        w.inner.index == a.inner.index
            && w.prog() > a.prog()
            && w.prog() < b.prog()
            && w.inner.op.defs().contains(d)
            && w.iter.subsumes(&cond)
    })
}

// --- memory and the BREAK protocol (cross-frame) -----------------------

/// The alias predicate the scheduler itself uses: conservative under both
/// an unknown and a zero stride, at the pass distance of the two frames.
fn aliases(a: &Inst, ma: &MemAccess, b: &Inst, mb: &MemAccess) -> bool {
    let delta = (a.inner.index - b.inner.index) as i64;
    ma.may_alias(mb, delta, |_| None) || ma.may_alias(mb, delta, |_| Some(0))
}

fn memory_and_breaks(spec: &LoopSpec, insts: &[Inst], out: &mut Vec<Violation>) {
    let observable = |i: &Inst| {
        i.inner.op.is_store() || i.inner.op.defs().iter().any(|d| spec.live_out.contains(d))
    };
    for (ai, a) in insts.iter().enumerate() {
        for (bi, b) in insts.iter().enumerate() {
            if ai == bi || a.prog() >= b.prog() {
                continue;
            }
            // a is program-earlier within one original iteration; the pair
            // is relevant only on shared paths of that iteration.
            if a.iter.is_disjoint(&b.iter) {
                continue;
            }
            if let (Some(ma), Some(mb)) = (mem_access(&a.inner.op), mem_access(&b.inner.op)) {
                if ma.interferes(&mb) && aliases(a, &ma, b, &mb) {
                    match (ma.kind, mb.kind) {
                        (AccessKind::Write, AccessKind::Read) => {
                            if !a.executes_strictly_before(b) {
                                out.push(Violation::MemoryOrder {
                                    kind: "W->R",
                                    detail: format!("{} vs {}", a.describe(), b.describe()),
                                });
                            }
                        }
                        (AccessKind::Read, AccessKind::Write) => {
                            if b.executes_strictly_before(a) {
                                out.push(Violation::MemoryOrder {
                                    kind: "R->W",
                                    detail: format!("{} vs {}", a.describe(), b.describe()),
                                });
                            }
                        }
                        (AccessKind::Write, AccessKind::Write) => {
                            if !a.executes_strictly_before(b) {
                                out.push(Violation::MemoryOrder {
                                    kind: "W->W",
                                    detail: format!("{} vs {}", a.describe(), b.describe()),
                                });
                            }
                        }
                        (AccessKind::Read, AccessKind::Read) => {}
                    }
                }
            }
            let (a_brk, b_brk) = (a.inner.op.is_break(), b.inner.op.is_break());
            if a_brk && observable(b) {
                // An observable program-after a BREAK must execute strictly
                // after the BREAK resolves (paper: no exit compensation).
                if !a.executes_strictly_before(b) {
                    out.push(Violation::BreakProtocol {
                        rule: "observable-below-break",
                        detail: format!("{} vs {}", a.describe(), b.describe()),
                    });
                }
            }
            if b_brk && observable(a) && !a_brk {
                // A BREAK may not pass a program-earlier observable.
                if b.executes_strictly_before(a) {
                    out.push(Violation::BreakProtocol {
                        rule: "break-after-observable",
                        detail: format!("{} vs {}", a.describe(), b.describe()),
                    });
                }
            }
            if a_brk && b_brk && b.executes_strictly_before(a) {
                out.push(Violation::BreakProtocol {
                    rule: "break-order",
                    detail: format!("{} vs {}", a.describe(), b.describe()),
                });
            }
        }
    }
}

// --- speculation and predicate availability ----------------------------

fn speculation(machine: &MachineConfig, insts: &[Inst], out: &mut Vec<Violation>) {
    // Our own IF log: every IF instance computing predicate row `pr` at
    // iteration index `idx`, scheduled in row `row`.
    struct Entry<'m> {
        idx: i32,
        row: usize,
        formal: &'m PredicateMatrix,
    }
    let mut log: Vec<(u32, Entry)> = Vec::new();
    for i in insts {
        if let Some(pr) = i.inner.computes_if {
            log.push((
                pr,
                Entry {
                    idx: i.inner.index,
                    row: i.row,
                    formal: &i.formal,
                },
            ));
        }
    }
    for x in insts {
        for (pr, pc, _v) in x.formal.constrained() {
            let entries: Vec<&Entry> = log
                .iter()
                .filter(|(r, _)| *r == pr)
                .map(|(_, e)| e)
                .collect();
            if entries.is_empty() {
                out.push(Violation::UnresolvedPredicate {
                    pred: (pr, pc),
                    detail: x.describe(),
                });
                continue;
            }
            // Computed in a previous pass: always available.
            if entries.iter().any(|e| pc < e.idx) {
                continue;
            }
            let same: Vec<&&Entry> = entries.iter().filter(|e| e.idx == pc).collect();
            // Prefer the clones on the instance's own paths.
            let on_path: Vec<&&&Entry> = same
                .iter()
                .filter(|e| !e.formal.is_disjoint(&x.formal))
                .collect();
            let resolved_above = if !on_path.is_empty() {
                on_path.iter().any(|e| e.row <= x.row)
            } else {
                same.iter().any(|e| e.row <= x.row)
            };
            if resolved_above {
                continue;
            }
            // The predicate resolves below this row (or only in a future
            // pass): the instance executes speculatively.
            if !x.inner.op.is_speculable() {
                out.push(Violation::Speculation {
                    pred: (pr, pc),
                    row: x.row,
                    detail: x.describe(),
                });
            } else if matches!(x.inner.op.kind, OpKind::Load { .. }) && !machine.speculative_loads {
                out.push(Violation::Speculation {
                    pred: (pr, pc),
                    row: x.row,
                    detail: format!("speculative load forbidden: {}", x.describe()),
                });
            }
        }
    }
}

// --- per-row issue width -----------------------------------------------

fn row_resources(
    machine: &MachineConfig,
    sched: &Schedule,
    insts: &[Inst],
    out: &mut Vec<Violation>,
) {
    for row in 0..sched.rows.len() {
        for class in [ResClass::Alu, ResClass::Mem, ResClass::Branch] {
            let members: Vec<&Inst> = insts
                .iter()
                .filter(|i| i.row == row && i.inner.op.res_class() == class)
                .collect();
            let limit = machine.limit(class) as usize;
            if members.len() <= limit {
                continue;
            }
            let used = max_coexecuting(&members);
            if used > limit {
                out.push(Violation::Resource {
                    site: CycleSite::Row(row),
                    class: match class {
                        ResClass::Alu => "ALU",
                        ResClass::Mem => "MEM",
                        ResClass::Branch => "BRANCH",
                    },
                    used,
                    limit: limit as u32,
                });
            }
        }
    }
}

/// Size of the largest pairwise-compatible (non-disjoint) subset: matrices
/// conflict only elementwise, so pairwise consistency implies a common
/// path, and this is exactly the worst-case co-issue width.
fn max_coexecuting(members: &[&Inst]) -> usize {
    fn go(members: &[&Inst], i: usize, chosen: &mut Vec<usize>, best: &mut usize) {
        *best = (*best).max(chosen.len());
        if i == members.len() || chosen.len() + (members.len() - i) <= *best {
            return;
        }
        let compatible = chosen
            .iter()
            .all(|&c| !members[c].formal.is_disjoint(&members[i].formal));
        if compatible {
            chosen.push(i);
            go(members, i + 1, chosen, best);
            chosen.pop();
        }
        go(members, i + 1, chosen, best);
    }
    let mut best = 0;
    go(members, 0, &mut Vec::new(), &mut best);
    best
}
