//! The coverage-guided fuzz driver and its oracle.
//!
//! One fuzz iteration mutates a corpus entry (or generates a fresh loop),
//! lowers it, and runs the full verification gauntlet: sequential, local
//! and PSP compilation on wide and narrow machines, each checked by the
//! independent validators of this crate *and* differentially against the
//! reference interpreter; EMS modulo scheduling checked by the modulo
//! validator; and the exact certifier checked for bound sanity
//! (`certified II ≤ EMS II`) with a validated witness. Any failure is
//! minimized by [`crate::reduce`] and written under `tests/repros/` as a
//! replayable `.psp` file.
//!
//! Coverage is the feature signature of [`crate::features`]: an input that
//! lights up a new signature joins the corpus and becomes mutation fodder.

use crate::features::Features;
use crate::grammar::{self, S};
use crate::modulo::validate_modulo;
use crate::schedule::validate_schedule;
use crate::violation::Violation;
use crate::vliw::validate_vliw;
use psp_core::{pipeline_loop, PspConfig};
use psp_ir::LoopSpec;
use psp_machine::{MachineConfig, VliwLoop};
use psp_opt::{certify, Certification, ExactConfig};
use psp_sim::{check_equivalence_batch, EngineKind, EquivConfig};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A reproducible oracle failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which oracle stage failed (`seq`, `psp-wide`, `certify`, ...).
    pub stage: String,
    /// The violation list or equivalence error, rendered.
    pub detail: String,
}

/// Differential trials: three rungs of the [`psp_sim::TRIAL_LENS`] ladder
/// (trip counts 1, 2 and 7) from base seed 10; `PSP_EQUIV_TRIALS` widens
/// every oracle invocation at once.
const EQUIV_TRIALS: usize = 3;
const EQUIV_SEED: u64 = 10;
const MAX_CYCLES: u64 = 1_000_000;

fn fail(stage: &str, detail: impl std::fmt::Display) -> Failure {
    Failure {
        stage: stage.into(),
        detail: detail.to_string(),
    }
}

fn check_violations(stage: &str, vs: Vec<Violation>) -> Result<(), Failure> {
    if vs.is_empty() {
        Ok(())
    } else {
        Err(fail(
            stage,
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        ))
    }
}

fn check_equiv(
    stage: &str,
    spec: &LoopSpec,
    prog: &VliwLoop,
    engine: EngineKind,
) -> Result<(), Failure> {
    // Decode once, run the whole trial set over reusable scratch.
    let cfg = EquivConfig::new(EQUIV_TRIALS, EQUIV_SEED)
        .with_max_cycles(MAX_CYCLES)
        .with_engine(engine);
    check_equivalence_batch(spec, prog, &cfg, |seed, len| {
        grammar::initial(spec, len, seed)
    })
    .map(|_| ())
    .map_err(|e| fail(stage, e))
}

/// Run every technique and every checker on one loop, using the engine
/// selected by the environment (decoded unless `PSP_SIM_ENGINE` says
/// otherwise). `Ok` carries the coverage features of the run.
pub fn run_oracle(spec: &LoopSpec) -> Result<Features, Failure> {
    run_oracle_with(spec, EngineKind::from_env())
}

/// [`run_oracle`] with an explicit differential engine. Repro replay
/// pins [`EngineKind::Interpreter`] so a reproducer always re-fails
/// against the trusted reference, whatever found it.
pub fn run_oracle_with(spec: &LoopSpec, engine: EngineKind) -> Result<Features, Failure> {
    let mut feats = Features::default();
    spec.validate()
        .map_err(|e| fail("spec", format!("{e:?}")))?;

    let wide = MachineConfig::paper_default();
    let narrow = MachineConfig::narrow(2, 1, 1);

    let seq = psp_baselines::compile_sequential(spec);
    check_violations(
        "seq-validate",
        validate_vliw(spec, &MachineConfig::sequential(), &seq),
    )?;
    check_equiv("seq-equiv", spec, &seq, engine)?;

    for (label, m) in [("local-wide", &wide), ("local-narrow", &narrow)] {
        let prog = psp_baselines::compile_local(spec, m);
        check_violations(label, validate_vliw(spec, m, &prog))?;
        check_equiv(label, spec, &prog, engine)?;
    }

    for (label, m) in [("psp-wide", &wide), ("psp-narrow", &narrow)] {
        let res = pipeline_loop(spec, &PspConfig::with_machine(m.clone()))
            .map_err(|e| fail(label, format!("pipeline failed: {e}")))?;
        check_violations(label, validate_schedule(spec, m, &res.schedule))?;
        check_violations(label, validate_vliw(spec, m, &res.program))?;
        check_equiv(label, spec, &res.program, engine)?;
        if label == "psp-wide" {
            feats.record_stats(res.stats.counters());
            feats.psp_ii = res.schedule.n_rows().min(255) as u8;
            feats.blocks = res.program.blocks.len().min(255) as u8;
        }
    }

    // The modulo validator needs the live-out set of the if-converted,
    // renamed body the EMS scheduler worked on; re-derive it the same way.
    let mut ic = psp_baselines::if_convert(spec);
    psp_baselines::rename::rename_inductions(&mut ic.ops, &mut ic.spec);
    let ems = psp_baselines::modulo_schedule(spec, &wide);
    check_violations("ems", validate_modulo(&ic.spec.live_out, &wide, &ems))?;
    feats.ems_ii = ems.ii.min(255) as u8;

    let cfg = ExactConfig {
        max_nodes: 20_000,
        ..ExactConfig::default()
    };
    let exact = certify(spec, &wide, &cfg, Some(ems.ii));
    match exact.outcome {
        Certification::Certified(ii) => {
            if ii > ems.ii {
                return Err(fail(
                    "certify",
                    format!("certified II {ii} above the EMS feasible point {}", ems.ii),
                ));
            }
            if let Some(w) = &exact.schedule {
                check_violations("certify", validate_modulo(&ic.spec.live_out, &wide, w))?;
            }
            feats.cert = if ii < ems.ii { 3 } else { 2 };
        }
        Certification::Bounded { lb, .. } => {
            if lb > ems.ii {
                return Err(fail(
                    "certify",
                    format!("lower bound {lb} above the EMS feasible point {}", ems.ii),
                ));
            }
            feats.cert = 1;
        }
    }
    Ok(feats)
}

/// Fuzz campaign settings.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// RNG seed (campaigns are reproducible from the seed alone).
    pub seed: u64,
    /// Maximum oracle executions.
    pub iters: usize,
    /// Optional wall-clock budget; checked between iterations.
    pub budget: Option<Duration>,
    /// Where to write minimized reproducers (`None` = don't write).
    pub repro_dir: Option<PathBuf>,
    /// Stop after this many distinct failures.
    pub max_failures: usize,
}

impl FuzzConfig {
    /// The CI smoke configuration: small, time-boxed, reproducible.
    pub fn smoke(seed: u64) -> Self {
        FuzzConfig {
            seed,
            // The decoded engine made the oracle's differential stage much
            // cheaper, so the same wall-clock box affords a deeper campaign.
            iters: if cfg!(debug_assertions) { 60 } else { 1200 },
            budget: Some(Duration::from_secs(300)),
            repro_dir: Some(PathBuf::from("tests/repros")),
            max_failures: 3,
        }
    }
}

/// One minimized finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The failing stage and rendered detail.
    pub failure: Failure,
    /// The minimized statement list.
    pub reduced: Vec<S>,
    /// Where the replayable reproducer was written, if anywhere.
    pub path: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Oracle executions performed.
    pub executed: usize,
    /// Corpus size at the end (distinct feature signatures).
    pub corpus: usize,
    /// Minimized findings (empty = clean run).
    pub findings: Vec<Finding>,
    /// Wall-clock spent.
    pub elapsed: Duration,
}

/// Run a fuzz campaign.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let start = Instant::now();
    let mut rng = grammar::SplitMix64(cfg.seed);
    let mut corpus: Vec<Vec<S>> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut executed = 0;

    while executed < cfg.iters && findings.len() < cfg.max_failures {
        if let Some(b) = cfg.budget {
            if start.elapsed() > b {
                break;
            }
        }
        // Mostly mutate the corpus; keep injecting fresh shapes so the
        // campaign never fixates on one region of the grammar.
        let stmts = if corpus.is_empty() || rng.below(4) == 0 {
            grammar::random_body(&mut rng)
        } else {
            let base = &corpus[rng.below(corpus.len())];
            grammar::mutate(base, &mut rng)
        };
        let spec = grammar::build_spec(&stmts);
        executed += 1;
        match run_oracle(&spec) {
            Ok(mut feats) => {
                let shape = Features::of_input(&stmts);
                feats.size_bucket = shape.size_bucket;
                feats.depth = shape.depth;
                feats.n_ifs = shape.n_ifs;
                if seen.insert(feats.signature()) {
                    corpus.push(stmts);
                }
            }
            Err(failure) => {
                let reduced = crate::reduce::reduce_failure(&stmts, &failure);
                let path = cfg
                    .repro_dir
                    .as_ref()
                    .and_then(|d| write_repro(d, &failure, &reduced).ok());
                findings.push(Finding {
                    failure,
                    reduced,
                    path,
                });
            }
        }
    }
    FuzzOutcome {
        executed,
        corpus: corpus.len(),
        findings,
        elapsed: start.elapsed(),
    }
}

/// Write a minimized reproducer as a commented `.psp` file (the lexer
/// skips `//` lines, so the file replays directly via `psp-verify replay`).
pub fn write_repro(dir: &Path, failure: &Failure, stmts: &[S]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let src = grammar::to_source(stmts);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let path = dir.join(format!("fuzz-{}-{:08x}.psp", failure.stage, h as u32));
    let detail_one_line = failure.detail.replace('\n', " | ");
    let body = format!(
        "// Minimized fuzz reproducer.\n// stage: {}\n// detail: {}\n{}",
        failure.stage, detail_one_line, src
    );
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Re-run the oracle on a statement list, reporting whether it still fails
/// at the given stage (the reducer's interestingness predicate).
pub fn fails_at_stage(stmts: &[S], stage: &str) -> bool {
    let spec = grammar::build_spec(stmts);
    matches!(run_oracle(&spec), Err(f) if f.stage == stage)
}
