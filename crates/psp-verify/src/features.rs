//! Cheap coverage features guiding the fuzzer.
//!
//! A full-blown coverage instrumentation is out of scope; instead each
//! oracle run is summarized into a small discretized feature vector —
//! input shape, which transformations fired (from [`psp_core::PspStats`]),
//! schedule shape, certifier outcome — and hashed. An input earns a place
//! in the corpus iff its signature is new, which in practice steers the
//! mutator toward inputs exercising new scheduler behavior (splits,
//! renames, wraps, deeper nesting) rather than resampling the same paths.

use crate::grammar::{stmt_count, S};

/// Discretized behavior summary of one oracle run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Features {
    /// Statement count bucket (0–1, 2–3, 4–7, 8+).
    pub size_bucket: u8,
    /// Maximum `if` nesting depth of the input.
    pub depth: u8,
    /// Number of `if`s in the input.
    pub n_ifs: u8,
    /// `[moves, wraps, splits, candidates, rounds]` buckets (log2).
    pub stat_buckets: [u8; 5],
    /// PSP initiation interval (row count) on the wide machine.
    pub psp_ii: u8,
    /// EMS single II on the wide machine.
    pub ems_ii: u8,
    /// Certifier outcome: 0 none, 1 bounded, 2 certified-equal-ems,
    /// 3 certified-better.
    pub cert: u8,
    /// Number of VLIW blocks bucket.
    pub blocks: u8,
}

fn bucket(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8 // 0, 1, 2, 2, 3, 3, 3, 3, 4, ...
}

impl Features {
    /// Fill the input-shape features from the statement list.
    pub fn of_input(stmts: &[S]) -> Self {
        fn depth(stmts: &[S]) -> u8 {
            stmts
                .iter()
                .map(|s| match s {
                    S::If(_, _, _, t, e) => 1 + depth(t).max(depth(e)),
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        fn ifs(stmts: &[S]) -> u8 {
            stmts
                .iter()
                .map(|s| match s {
                    S::If(_, _, _, t, e) => 1u8.saturating_add(ifs(t)).saturating_add(ifs(e)),
                    _ => 0,
                })
                .sum()
        }
        Features {
            size_bucket: bucket(stmt_count(stmts) as u64),
            depth: depth(stmts),
            n_ifs: ifs(stmts),
            ..Default::default()
        }
    }

    /// Record the scheduler's transformation counters.
    pub fn record_stats(&mut self, counters: [usize; 5]) {
        for (b, c) in self.stat_buckets.iter_mut().zip(counters) {
            *b = bucket(c as u64);
        }
    }

    /// FNV-1a signature; corpus novelty is signature novelty.
    pub fn signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        eat(self.size_bucket);
        eat(self.depth);
        eat(self.n_ifs);
        for b in self.stat_buckets {
            eat(b);
        }
        eat(self.psp_ii);
        eat(self.ems_ii);
        eat(self.cert);
        eat(self.blocks);
        h
    }
}
