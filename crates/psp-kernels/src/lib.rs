//! Kernel suite: loops with conditional branches of the kind the paper's
//! introduction motivates, each with a deterministic input generator and an
//! independent golden-result function.
//!
//! The suite substitutes for the unavailable inputs behind the paper's
//! "preliminary experimental results" (§3): every kernel is a single
//! innermost do-while loop with 1–3 IFs and a `BREAK` exit test — exactly
//! the loop class the PSP technique targets. `vecmin` is the paper's own
//! running example (§1.1).

pub mod data;
pub mod kernels;

pub use data::KernelData;
pub use kernels::{all_kernels, by_name, Kernel};
