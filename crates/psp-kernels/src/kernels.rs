//! The kernels and their registry.

use crate::data::KernelData;
use psp_ir::op::build::*;
use psp_ir::{CmpOp, LoopBuilder, LoopSpec, Reg, RegRef};
use psp_sim::MachineState;

type InitFn = Box<dyn Fn(&KernelData) -> MachineState + Send + Sync>;
type GoldenRegsFn = Box<dyn Fn(&KernelData) -> Vec<(RegRef, i64)> + Send + Sync>;
type GoldenYFn = Box<dyn Fn(&KernelData) -> Vec<i64> + Send + Sync>;

/// One benchmark kernel: a source loop, its input mapping, and independent
/// golden results.
pub struct Kernel {
    /// Kernel name (registry key).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The source loop.
    pub spec: LoopSpec,
    init: InitFn,
    golden_regs: GoldenRegsFn,
    golden_y: Option<GoldenYFn>,
}

impl Kernel {
    /// Build the initial machine state for the given input.
    pub fn initial_state(&self, data: &KernelData) -> MachineState {
        (self.init)(data)
    }

    /// Check a final state against the kernel's independent golden results
    /// (live-out registers and, where applicable, the output array).
    pub fn check(&self, state: &MachineState, data: &KernelData) -> Result<(), String> {
        for (reg, expected) in (self.golden_regs)(data) {
            let actual = match reg {
                RegRef::Gpr(r) => state.regs[r.0 as usize],
                RegRef::Cc(c) => state.ccs[c.0 as usize] as i64,
            };
            if actual != expected {
                return Err(format!(
                    "{}: live-out {reg} = {actual}, expected {expected}",
                    self.name
                ));
            }
        }
        if let Some(gy) = &self.golden_y {
            let expected = gy(data);
            let actual = &state.arrays[1];
            if actual != &expected {
                return Err(format!("{}: output array mismatch", self.name));
            }
        }
        Ok(())
    }

    /// Whether the kernel writes the `y` array.
    pub fn writes_y(&self) -> bool {
        self.golden_y.is_some()
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("name", &self.name).finish()
    }
}

fn base_state(n_regs: u32, n_ccs: u32, data: &KernelData, with_y: bool) -> MachineState {
    let mut s = MachineState::new(n_regs.max(8), n_ccs.max(4));
    s.push_array(data.x.clone());
    if with_y {
        s.push_array(data.y.clone());
    }
    s
}

/// The paper's running example (§1.1): `for (k=0;k<n;k++) if (x[k]<x[m]) m=k;`.
pub fn vecmin() -> Kernel {
    let mut b = LoopBuilder::new("vecmin");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let m = b.named_reg("m");
    let xk = b.named_reg("xk");
    let xm = b.named_reg("xm");
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(load(xm, x, m));
    b.op(cmp(CmpOp::Lt, cc0, xk, xm));
    b.if_else(
        cc0,
        |b| {
            b.op(copy(m, k));
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, m], [m]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "vecmin",
        description: "index of the first minimum (paper Fig. 1)",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s
        }),
        golden_regs: Box::new(move |d| {
            let mut mi = 0usize;
            for (i, &v) in d.x.iter().enumerate() {
                if v < d.x[mi] {
                    mi = i;
                }
            }
            vec![(RegRef::Gpr(m), mi as i64)]
        }),
        golden_y: None,
    }
}

/// `if (x[k] > t) acc += x[k];` — conditional accumulation.
pub fn cond_sum() -> Kernel {
    let mut b = LoopBuilder::new("cond_sum");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let acc = b.named_reg("acc");
    let t = b.named_reg("t");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(cmp(CmpOp::Gt, cc0, xk, t));
    b.if_else(
        cc0,
        |b| {
            b.op(add(acc, acc, xk));
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, acc, t], [acc]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "cond_sum",
        description: "sum of elements above a threshold",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[t.0 as usize] = d.t;
            s
        }),
        golden_regs: Box::new(move |d| {
            let sum: i64 = d.x.iter().filter(|&&v| v > d.t).sum();
            vec![(RegRef::Gpr(acc), sum)]
        }),
        golden_y: None,
    }
}

/// `if (x[k] > t) cnt++;` — conditional count.
pub fn count_above() -> Kernel {
    let mut b = LoopBuilder::new("count_above");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let cnt = b.named_reg("cnt");
    let t = b.named_reg("t");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(cmp(CmpOp::Gt, cc0, xk, t));
    b.if_else(
        cc0,
        |b| {
            b.op(add(cnt, cnt, 1i64));
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, cnt, t], [cnt]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "count_above",
        description: "count of elements above a threshold",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[t.0 as usize] = d.t;
            s
        }),
        golden_regs: Box::new(move |d| {
            let c = d.x.iter().filter(|&&v| v > d.t).count() as i64;
            vec![(RegRef::Gpr(cnt), c)]
        }),
        golden_y: None,
    }
}

/// `y[k] = clamp(x[k], lo, hi)` — two nested IFs, store on every path.
pub fn clamp_store() -> Kernel {
    let mut b = LoopBuilder::new("clamp_store");
    let x = b.array("x");
    let y = b.array("y");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let lo = b.named_reg("lo");
    let hi = b.named_reg("hi");
    let v = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    let cc2 = b.cc();
    b.op(load(v, x, k));
    b.op(cmp(CmpOp::Lt, cc0, v, lo));
    b.if_else(
        cc0,
        |b| {
            b.op(copy(v, lo));
        },
        |b| {
            b.op(cmp(CmpOp::Gt, cc1, v, hi));
            b.if_else(
                cc1,
                |b| {
                    b.op(copy(v, hi));
                },
                |_| {},
            );
        },
    );
    b.op(store(y, k, v));
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc2, k, n));
    b.break_(cc2);
    let spec = b.finish([n, k, lo, hi], Vec::<Reg>::new());
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "clamp_store",
        description: "clamp each element into [lo, hi] (nested IFs + store)",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, true);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[lo.0 as usize] = d.lo;
            s.regs[hi.0 as usize] = d.hi;
            s
        }),
        golden_regs: Box::new(|_| vec![]),
        golden_y: Some(Box::new(|d| {
            d.x.iter().map(|&v| v.clamp(d.lo, d.hi)).collect()
        })),
    }
}

/// `acc += x[k]; if (acc > hi) acc = hi;` — saturating sum (loop-carried
/// dependence through `acc`).
pub fn sat_add() -> Kernel {
    let mut b = LoopBuilder::new("sat_add");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let acc = b.named_reg("acc");
    let hi = b.named_reg("hi");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(add(acc, acc, xk));
    b.op(cmp(CmpOp::Gt, cc0, acc, hi));
    b.if_else(
        cc0,
        |b| {
            b.op(copy(acc, hi));
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, acc, hi], [acc]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "sat_add",
        description: "saturating running sum (loop-carried acc)",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[hi.0 as usize] = d.hi;
            s
        }),
        golden_regs: Box::new(move |d| {
            let mut a = 0i64;
            for &v in &d.x {
                a += v;
                if a > d.hi {
                    a = d.hi;
                }
            }
            vec![(RegRef::Gpr(acc), a)]
        }),
        golden_y: None,
    }
}

/// `d = x[k]; if (d < 0) d = -d; acc += d;` — sum of absolute values.
pub fn abs_sum() -> Kernel {
    let mut b = LoopBuilder::new("abs_sum");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let acc = b.named_reg("acc");
    let d_ = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(d_, x, k));
    b.op(cmp(CmpOp::Lt, cc0, d_, 0i64));
    b.if_else(
        cc0,
        |b| {
            b.op(sub(d_, 0i64, d_));
        },
        |_| {},
    );
    b.op(add(acc, acc, d_));
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, acc], [acc]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "abs_sum",
        description: "sum of absolute values",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s
        }),
        golden_regs: Box::new(move |d| {
            let sum: i64 = d.x.iter().map(|&v| v.abs()).sum();
            vec![(RegRef::Gpr(acc), sum)]
        }),
        golden_y: None,
    }
}

/// `if (x[k] > best) { best = x[k]; pos = k; }` — running maximum with
/// position (two operations in the taken branch).
pub fn runmax() -> Kernel {
    let mut b = LoopBuilder::new("runmax");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let best = b.named_reg("best");
    let pos = b.named_reg("pos");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(cmp(CmpOp::Gt, cc0, xk, best));
    b.if_else(
        cc0,
        |b| {
            b.op(copy(best, xk));
            b.op(copy(pos, k));
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, best, pos], [best, pos]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "runmax",
        description: "running maximum with position",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[best.0 as usize] = i64::MIN / 2;
            s.regs[pos.0 as usize] = -1;
            s
        }),
        golden_regs: Box::new(move |d| {
            let mut bv = i64::MIN / 2;
            let mut bp = -1i64;
            for (i, &v) in d.x.iter().enumerate() {
                if v > bv {
                    bv = v;
                    bp = i as i64;
                }
            }
            vec![(RegRef::Gpr(best), bv), (RegRef::Gpr(pos), bp)]
        }),
        golden_y: None,
    }
}

/// `y[k] = x[k] < 0 ? -1 : 1` — store in *both* branches.
pub fn sign_store() -> Kernel {
    let mut b = LoopBuilder::new("sign_store");
    let x = b.array("x");
    let y = b.array("y");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(cmp(CmpOp::Lt, cc0, xk, 0i64));
    b.if_else(
        cc0,
        |b| {
            b.op(store(y, k, -1i64));
        },
        |b| {
            b.op(store(y, k, 1i64));
        },
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k], Vec::<Reg>::new());
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "sign_store",
        description: "store the sign of each element (stores on both branches)",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, true);
            s.regs[n.0 as usize] = d.len() as i64;
            s
        }),
        golden_regs: Box::new(|_| vec![]),
        golden_y: Some(Box::new(|d| {
            d.x.iter().map(|&v| if v < 0 { -1 } else { 1 }).collect()
        })),
    }
}

/// `if (x[k] > lo) if (x[k] < hi) acc += x[k];` — band-pass accumulation
/// with two nested IFs.
pub fn two_cond() -> Kernel {
    let mut b = LoopBuilder::new("two_cond");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let acc = b.named_reg("acc");
    let lo = b.named_reg("lo");
    let hi = b.named_reg("hi");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    let cc2 = b.cc();
    b.op(load(xk, x, k));
    b.op(cmp(CmpOp::Gt, cc0, xk, lo));
    b.if_else(
        cc0,
        |b| {
            b.op(cmp(CmpOp::Lt, cc1, xk, hi));
            b.if_else(
                cc1,
                |b| {
                    b.op(add(acc, acc, xk));
                },
                |_| {},
            );
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc2, k, n));
    b.break_(cc2);
    let spec = b.finish([n, k, acc, lo, hi], [acc]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "two_cond",
        description: "band-pass accumulation (nested IFs)",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[lo.0 as usize] = d.lo;
            s.regs[hi.0 as usize] = d.hi;
            s
        }),
        golden_regs: Box::new(move |d| {
            let sum: i64 = d.x.iter().filter(|&&v| v > d.lo && v < d.hi).sum();
            vec![(RegRef::Gpr(acc), sum)]
        }),
        golden_y: None,
    }
}

/// Linear search with early exit: `if (x[k] == t) { found = k; break; }`.
pub fn find_first() -> Kernel {
    let mut b = LoopBuilder::new("find_first");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let found = b.named_reg("found");
    let t = b.named_reg("t");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(cmp(CmpOp::Eq, cc0, xk, t));
    b.if_else(
        cc0,
        |b| {
            b.op(copy(found, k));
        },
        |_| {},
    );
    b.break_(cc0);
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, found, t], [found]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "find_first",
        description: "linear search with early exit (two BREAKs)",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[found.0 as usize] = -1;
            s.regs[t.0 as usize] = d.t;
            s
        }),
        golden_regs: Box::new(move |d| {
            let f =
                d.x.iter()
                    .position(|&v| v == d.t)
                    .map(|i| i as i64)
                    .unwrap_or(-1);
            vec![(RegRef::Gpr(found), f)]
        }),
        golden_y: None,
    }
}

/// Skewed-branch accumulation: `if (x[k] > t) { acc += x[k]; cnt++; }` —
/// pair with [`KernelData::with_taken_fraction`] for probability sweeps.
pub fn skewed() -> Kernel {
    let mut b = LoopBuilder::new("skewed");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let acc = b.named_reg("acc");
    let cnt = b.named_reg("cnt");
    let t = b.named_reg("t");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(cmp(CmpOp::Gt, cc0, xk, t));
    b.if_else(
        cc0,
        |b| {
            b.op(add(acc, acc, xk));
            b.op(add(cnt, cnt, 1i64));
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, acc, cnt, t], [acc, cnt]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "skewed",
        description: "threshold accumulation with tunable branch probability",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[t.0 as usize] = d.t;
            s
        }),
        golden_regs: Box::new(move |d| {
            let sum: i64 = d.x.iter().filter(|&&v| v > d.t).sum();
            let c = d.x.iter().filter(|&&v| v > d.t).count() as i64;
            vec![(RegRef::Gpr(acc), sum), (RegRef::Gpr(cnt), c)]
        }),
        golden_y: None,
    }
}

/// `if (y[k] != 0) acc += x[k] * y[k];` — sparse dot product (two loads and
/// a multiply in the taken branch).
pub fn dot_cond() -> Kernel {
    let mut b = LoopBuilder::new("dot_cond");
    let x = b.array("x");
    let y = b.array("y");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let acc = b.named_reg("acc");
    let xk = b.reg();
    let yk = b.reg();
    let p = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(load(yk, y, k));
    b.op(cmp(CmpOp::Ne, cc0, yk, 0i64));
    b.if_else(
        cc0,
        |b| {
            b.op(alu(psp_ir::AluOp::Mul, p, xk, yk));
            b.op(add(acc, acc, p));
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, acc], [acc]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "dot_cond",
        description: "sparse dot product (condition on second array)",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, true);
            s.regs[n.0 as usize] = d.len() as i64;
            s
        }),
        golden_regs: Box::new(move |d| {
            let sum: i64 =
                d.x.iter()
                    .zip(&d.y)
                    .filter(|(_, &yv)| yv != 0)
                    .map(|(&xv, &yv)| xv.wrapping_mul(yv))
                    .sum();
            vec![(RegRef::Gpr(acc), sum)]
        }),
        golden_y: None,
    }
}

/// `y[k] = x[k] > t ? x[k] : t` — threshold select with store on both
/// paths, the shape most favorable to if-conversion baselines.
pub fn threshold_store() -> Kernel {
    let mut b = LoopBuilder::new("threshold_store");
    let x = b.array("x");
    let y = b.array("y");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let t = b.named_reg("t");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(cmp(CmpOp::Gt, cc0, xk, t));
    b.if_else(
        cc0,
        |b| {
            b.op(store(y, k, xk));
        },
        |b| {
            b.op(store(y, k, t));
        },
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, t], Vec::<Reg>::new());
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "threshold_store",
        description: "elementwise max with a scalar (stores on both branches)",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, true);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[t.0 as usize] = d.t;
            s
        }),
        golden_regs: Box::new(|_| vec![]),
        golden_y: Some(Box::new(|d| {
            d.x.iter().map(|&v| if v > d.t { v } else { d.t }).collect()
        })),
    }
}

/// `if (x[k] > x[k+1]) { swap in y }` — one pass of bubble sort written to
/// a second array: two conditional stores to *adjacent, displaced*
/// addresses, the hardest memory-disambiguation shape in the suite.
pub fn bubble_pass() -> Kernel {
    let mut b = LoopBuilder::new("bubble_pass");
    let x = b.array("x");
    let y = b.array("y");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let a = b.reg();
    let c = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(a, x, k));
    b.op(load_addr(c, psp_ir::Address::indexed(x, k).displaced(1)));
    b.op(cmp(CmpOp::Gt, cc0, a, c));
    b.if_else(
        cc0,
        |b| {
            b.op(store(y, k, c));
            b.op(store_addr(psp_ir::Address::indexed(y, k).displaced(1), a));
        },
        |b| {
            b.op(store(y, k, a));
            b.op(store_addr(psp_ir::Address::indexed(y, k).displaced(1), c));
        },
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k], Vec::<Reg>::new());
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "bubble_pass",
        description: "adjacent compare-and-order into y (conditional displaced stores)",
        spec,
        init: Box::new(move |d| {
            // Pad both arrays with one guard element so x[k+1] and y[k+1]
            // stay in bounds on the final iteration (k = n-1).
            let mut s = MachineState::new(nr.max(8), nc.max(4));
            let mut xp = d.x.clone();
            xp.push(i64::MAX / 2);
            let mut yp = d.y.clone();
            yp.push(0);
            s.push_array(xp);
            s.push_array(yp);
            s.regs[n.0 as usize] = d.len() as i64;
            s
        }),
        golden_regs: Box::new(|_| vec![]),
        golden_y: Some(Box::new(|d| {
            // Replay the sequential semantics on the padded arrays: later
            // iterations overwrite the shared boundary element.
            let mut xp = d.x.clone();
            xp.push(i64::MAX / 2);
            let mut y = d.y.clone();
            y.push(0);
            for k in 0..d.len() {
                let (a, c) = (xp[k], xp[k + 1]);
                if a > c {
                    y[k] = c;
                    y[k + 1] = a;
                } else {
                    y[k] = a;
                    y[k + 1] = c;
                }
            }
            y
        })),
    }
}

/// Simultaneous running minimum and maximum — two IFs, two live-outs.
pub fn minmax() -> Kernel {
    let mut b = LoopBuilder::new("minmax");
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let lo = b.named_reg("lo");
    let hi = b.named_reg("hi");
    let xk = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    let cc2 = b.cc();
    b.op(load(xk, x, k));
    b.op(cmp(CmpOp::Lt, cc0, xk, lo));
    b.if_else(
        cc0,
        |b| {
            b.op(copy(lo, xk));
        },
        |_| {},
    );
    b.op(cmp(CmpOp::Gt, cc1, xk, hi));
    b.if_else(
        cc1,
        |b| {
            b.op(copy(hi, xk));
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc2, k, n));
    b.break_(cc2);
    let spec = b.finish([n, k, lo, hi], [lo, hi]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "minmax",
        description: "running minimum and maximum (two IFs, two live-outs)",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, false);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[lo.0 as usize] = i64::MAX / 2;
            s.regs[hi.0 as usize] = i64::MIN / 2;
            s
        }),
        golden_regs: Box::new(move |d| {
            vec![
                (RegRef::Gpr(lo), *d.x.iter().min().unwrap()),
                (RegRef::Gpr(hi), *d.x.iter().max().unwrap()),
            ]
        }),
        golden_y: None,
    }
}

/// Predicated multiply-accumulate: `if (x[k] > t) acc += x[k] * y[k]` — a
/// two-operand conditional body with a multiply on the taken path.
pub fn mac_cond() -> Kernel {
    let mut b = LoopBuilder::new("mac_cond");
    let x = b.array("x");
    let y = b.array("y");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let acc = b.named_reg("acc");
    let t = b.named_reg("t");
    let xk = b.reg();
    let yk = b.reg();
    let p = b.reg();
    let cc0 = b.cc();
    let cc1 = b.cc();
    b.op(load(xk, x, k));
    b.op(load(yk, y, k));
    b.op(cmp(CmpOp::Gt, cc0, xk, t));
    b.if_else(
        cc0,
        |b| {
            b.op(alu(psp_ir::AluOp::Mul, p, xk, yk));
            b.op(add(acc, acc, p));
        },
        |_| {},
    );
    b.op(add(k, k, 1i64));
    b.op(cmp(CmpOp::Ge, cc1, k, n));
    b.break_(cc1);
    let spec = b.finish([n, k, acc, t], [acc]);
    let (nr, nc) = (spec.n_regs, spec.n_ccs);
    Kernel {
        name: "mac_cond",
        description: "thresholded multiply-accumulate",
        spec,
        init: Box::new(move |d| {
            let mut s = base_state(nr, nc, d, true);
            s.regs[n.0 as usize] = d.len() as i64;
            s.regs[t.0 as usize] = d.t;
            s
        }),
        golden_regs: Box::new(move |d| {
            let sum: i64 =
                d.x.iter()
                    .zip(&d.y)
                    .filter(|(&xv, _)| xv > d.t)
                    .map(|(&xv, &yv)| xv.wrapping_mul(yv))
                    .sum();
            vec![(RegRef::Gpr(acc), sum)]
        }),
        golden_y: None,
    }
}

/// All kernels of the suite.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        vecmin(),
        cond_sum(),
        count_above(),
        clamp_store(),
        sat_add(),
        abs_sum(),
        runmax(),
        sign_store(),
        two_cond(),
        find_first(),
        skewed(),
        dot_cond(),
        threshold_store(),
        bubble_pass(),
        minmax(),
        mac_cond(),
    ]
}

/// Look up one kernel by name.
pub fn by_name(name: &str) -> Option<Kernel> {
    all_kernels().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::KernelData;
    use psp_sim::run_reference;

    /// Every kernel's reference execution must match its independent golden
    /// function on multiple random inputs.
    #[test]
    fn reference_matches_golden_on_random_inputs() {
        for kernel in all_kernels() {
            kernel.spec.validate().unwrap_or_else(|e| {
                panic!("{}: invalid spec: {e}", kernel.name);
            });
            for seed in 0..5u64 {
                let mut data = KernelData::random(seed * 31 + 7, 64);
                if kernel.name == "find_first" {
                    // Ensure the target is sometimes present.
                    if seed % 2 == 0 {
                        let present = data.x[37];
                        data = data.with_threshold(present);
                    } else {
                        data = data.with_threshold(1000);
                    }
                }
                let init = kernel.initial_state(&data);
                let run = run_reference(&kernel.spec, init, 1_000_000)
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
                kernel
                    .check(&run.state, &data)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }

    #[test]
    fn registry_is_complete_and_unique() {
        let ks = all_kernels();
        assert!(ks.len() >= 12);
        let mut names: Vec<_> = ks.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ks.len());
        assert!(by_name("vecmin").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn vecmin_matches_paper_example_shape() {
        let k = vecmin();
        assert_eq!(k.spec.n_ifs, 1);
        assert_eq!(k.spec.op_count(), 8);
    }

    #[test]
    fn find_first_early_exit_shortens_run() {
        let k = find_first();
        let mut data = KernelData::random(3, 100);
        data.x[10] = 4242;
        let data = data.with_threshold(4242);
        let run = run_reference(&k.spec, k.initial_state(&data), 1_000_000).unwrap();
        assert_eq!(run.iterations, 11); // exits in iteration 11 (k = 10)
        k.check(&run.state, &data).unwrap();
    }

    #[test]
    fn writes_y_flags_store_kernels() {
        assert!(by_name("clamp_store").unwrap().writes_y());
        assert!(by_name("sign_store").unwrap().writes_y());
        assert!(by_name("threshold_store").unwrap().writes_y());
        assert!(!by_name("vecmin").unwrap().writes_y());
    }

    #[test]
    fn single_element_inputs_work() {
        for kernel in all_kernels() {
            let data = KernelData::random(11, 1);
            let run = run_reference(&kernel.spec, kernel.initial_state(&data), 100_000).unwrap();
            kernel.check(&run.state, &data).unwrap();
            assert_eq!(run.iterations, 1, "{}", kernel.name);
        }
    }
}
