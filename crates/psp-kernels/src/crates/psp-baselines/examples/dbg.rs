use psp_baselines::{if_convert, depgraph::build_deps, listsched::list_schedule, rename::rename_inductions};
use psp_machine::MachineConfig;
fn main() {
    let kernel = psp_kernels::by_name("vecmin").unwrap();
    let mut ic = if_convert(&kernel.spec);
    rename_inductions(&mut ic.ops, &mut ic.spec);
    for (i,(o,c)) in ic.ops.iter().enumerate() { println!("{i}: {o}  {c}"); }
    let m = MachineConfig::paper_default();
    let deps = build_deps(&ic.ops, &ic.spec.live_out, &m);
    for (i,s) in deps.succs.iter().enumerate() { println!("succ {i}: {s:?}"); }
    println!("heights {:?}", deps.heights());
    let cycles = list_schedule(&ic.ops, &deps, &m);
    for (t,c) in cycles.iter().enumerate() { println!("C{t}: {}", c.iter().map(|o|o.to_string()).collect::<Vec<_>>().join("; ")); }
}
