//! Deterministic input generation for the kernel suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inputs shared by all kernels: two data arrays and scalar parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelData {
    /// Primary input array.
    pub x: Vec<i64>,
    /// Secondary input / output array (same length as `x`).
    pub y: Vec<i64>,
    /// Generic threshold / search target.
    pub t: i64,
    /// Lower clamp bound.
    pub lo: i64,
    /// Upper clamp bound.
    pub hi: i64,
}

impl KernelData {
    /// Uniform random data in `[-100, 100]`, length `len ≥ 1`, reproducible
    /// from `seed`.
    pub fn random(seed: u64, len: usize) -> Self {
        assert!(len >= 1, "do-while kernels need at least one element");
        let mut rng = StdRng::seed_from_u64(seed);
        let x = (0..len).map(|_| rng.gen_range(-100..=100)).collect();
        let y = (0..len).map(|_| rng.gen_range(-100..=100)).collect();
        Self {
            x,
            y,
            t: 0,
            lo: -50,
            hi: 50,
        }
    }

    /// Adjust the threshold `t` so that approximately a fraction `q` of the
    /// elements of `x` exceed it (controls branch probability in the
    /// skewed-branch kernels).
    pub fn with_taken_fraction(mut self, q: f64) -> Self {
        let mut sorted = self.x.clone();
        sorted.sort_unstable();
        let idx = ((1.0 - q.clamp(0.0, 1.0)) * (sorted.len() as f64 - 1.0)).round() as usize;
        self.t = sorted[idx.min(sorted.len() - 1)];
        self
    }

    /// Override the scalar threshold.
    pub fn with_threshold(mut self, t: i64) -> Self {
        self.t = t;
        self
    }

    /// Override the clamp bounds.
    pub fn with_bounds(mut self, lo: i64, hi: i64) -> Self {
        self.lo = lo;
        self.hi = hi;
        self
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible() {
        let a = KernelData::random(42, 100);
        let b = KernelData::random(42, 100);
        assert_eq!(a, b);
        let c = KernelData::random(43, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn arrays_have_requested_length() {
        let d = KernelData::random(1, 17);
        assert_eq!(d.x.len(), 17);
        assert_eq!(d.y.len(), 17);
        assert_eq!(d.len(), 17);
    }

    #[test]
    #[should_panic]
    fn zero_length_rejected() {
        KernelData::random(1, 0);
    }

    #[test]
    fn taken_fraction_controls_branch_probability() {
        let d = KernelData::random(7, 1000).with_taken_fraction(0.25);
        let frac = d.x.iter().filter(|&&v| v > d.t).count() as f64 / 1000.0;
        assert!((frac - 0.25).abs() < 0.08, "got {frac}");
        let d = KernelData::random(7, 1000).with_taken_fraction(0.9);
        let frac = d.x.iter().filter(|&&v| v > d.t).count() as f64 / 1000.0;
        assert!((frac - 0.9).abs() < 0.08, "got {frac}");
    }

    #[test]
    fn builders_override_fields() {
        let d = KernelData::random(1, 4)
            .with_threshold(9)
            .with_bounds(-1, 1);
        assert_eq!(d.t, 9);
        assert_eq!((d.lo, d.hi), (-1, 1));
    }
}
