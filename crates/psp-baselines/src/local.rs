//! Local (single-iteration) scheduling with renaming — the paper's Fig. 1b
//! baseline.
//!
//! Pipeline: if-convert the body, rename induction updates, build the
//! dependence graph, list-schedule into tree-VLIW cycles, and wrap the
//! result in a single-block loop that jumps back to itself.

use crate::depgraph::build_deps;
use crate::ifconv::if_convert;
use crate::listsched::list_schedule;
use crate::rename::rename_inductions;
use psp_ir::LoopSpec;
use psp_machine::{MachineConfig, Succ, VliwBlock, VliwLoop, VliwTerm};
use psp_predicate::PredicateMatrix;

/// Compile one iteration into a single tree-VLIW block (no motion across
/// the loop boundary).
pub fn compile_local(spec: &LoopSpec, m: &MachineConfig) -> VliwLoop {
    let mut ic = if_convert(spec);
    rename_inductions(&mut ic.ops, &mut ic.spec);
    let deps = build_deps(&ic.ops, &ic.spec.live_out, m);
    let cycles = list_schedule(&ic.ops, &deps, m);
    let block = VliwBlock {
        id: 0,
        matrix: PredicateMatrix::universe(),
        cycles,
        term: VliwTerm::Jump(Succ::back(0)),
    };
    let prog = VliwLoop {
        name: format!("{}-local", spec.name),
        prologue: vec![],
        blocks: vec![block],
        entry: 0,
        epilogue: vec![],
    };
    psp_machine::hook::check("compile_local", spec, m, &prog);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_kernels::{all_kernels, by_name, KernelData};
    use psp_sim::{check_equivalence, EquivConfig};

    #[test]
    fn vecmin_local_ii_is_3() {
        let kernel = by_name("vecmin").unwrap();
        let prog = compile_local(&kernel.spec, &MachineConfig::paper_default());
        prog.validate(&MachineConfig::paper_default()).unwrap();
        assert_eq!(prog.ii_range(), Some((3, 3)), "paper Fig. 1b");
    }

    #[test]
    fn all_kernels_locally_scheduled_equivalent() {
        let m = MachineConfig::paper_default();
        for kernel in all_kernels() {
            let prog = compile_local(&kernel.spec, &m);
            prog.validate(&m)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            for (seed, len) in EquivConfig::new(4, 1).trial_inputs() {
                let data = KernelData::random(seed * 13 + 1, len);
                let init = kernel.initial_state(&data);
                let (_, run) = check_equivalence(&kernel.spec, &prog, &init, 1_000_000)
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
                kernel.check(&run.state, &data).unwrap();
            }
        }
    }

    #[test]
    fn local_is_never_slower_than_sequential() {
        let m = MachineConfig::paper_default();
        for kernel in all_kernels() {
            let seqp = crate::seq::compile_sequential(&kernel.spec);
            let locp = compile_local(&kernel.spec, &m);
            let data = KernelData::random(99, 64);
            let init = kernel.initial_state(&data);
            let (_, seq_run) = check_equivalence(&kernel.spec, &seqp, &init, 1_000_000).unwrap();
            let (_, loc_run) = check_equivalence(&kernel.spec, &locp, &init, 1_000_000).unwrap();
            assert!(
                loc_run.body_cycles <= seq_run.body_cycles,
                "{}: local {} > seq {}",
                kernel.name,
                loc_run.body_cycles,
                seq_run.body_cycles
            );
        }
    }

    #[test]
    fn narrow_machine_still_correct() {
        let m = MachineConfig::narrow(1, 1, 1);
        for kernel in all_kernels() {
            let prog = compile_local(&kernel.spec, &m);
            prog.validate(&m).unwrap();
            let data = KernelData::random(5, 23);
            let init = kernel.initial_state(&data);
            let (_, run) = check_equivalence(&kernel.spec, &prog, &init, 1_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            kernel.check(&run.state, &data).unwrap();
        }
    }

    #[test]
    fn single_iteration_loops_work() {
        let m = MachineConfig::paper_default();
        for kernel in all_kernels() {
            let prog = compile_local(&kernel.spec, &m);
            let data = KernelData::random(77, 1);
            let init = kernel.initial_state(&data);
            check_equivalence(&kernel.spec, &prog, &init, 1_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        }
    }
}
