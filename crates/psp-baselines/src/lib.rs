//! Baseline loop compilers the PSP technique is measured against.
//!
//! * [`seq::compile_sequential`] — one operation per cycle, structured CFG
//!   preserved: the paper's §1.1 sequential machine (vecmin II = 7/8);
//! * [`local::compile_local`] — "local scheduling with renaming, without
//!   moving operations across loop boundaries" (paper Fig. 1b, II = 3):
//!   if-conversion of one iteration into a single tree-VLIW block, induction
//!   renaming, and critical-path list scheduling;
//! * [`unroll::compile_unrolled`] — unroll-and-schedule: the same machinery
//!   over `U` concatenated iterations (scratch registers renamed per copy),
//!   amortizing the exit-test chain;
//! * [`ems::modulo_schedule`] — a representative of the single-fixed-II
//!   class the paper contrasts with (refs \[10]\[11]\[12]): if-conversion followed
//!   by iterative modulo scheduling. The modulo scheduler produces a
//!   verified schedule (dependences modulo II, modulo resource table) and an
//!   idealized cycle model; see DESIGN.md §4 for the scope of this
//!   substitution.
//!
//! Shared machinery: [`ifconv`] (flattening + compound-guard
//! materialization), [`depgraph`] (dependence DAG with disjoint-path
//! pruning), and [`rename`] (induction-variable renaming) now live in
//! `psp-opt` — they are the constraint system shared between the greedy
//! EMS baseline and the exact II certifier — and are re-exported here
//! unchanged. [`listsched`] (height-priority list scheduler) stays local.

pub mod ems;
pub mod listsched;
pub mod local;
pub mod seq;
pub mod unroll;

pub use psp_opt::{depgraph, ifconv, rename};

pub use ems::{modulo_schedule, ModuloSchedule};
pub use ifconv::{if_convert, IfConverted};
pub use local::compile_local;
pub use psp_opt::{all_edges, ModEdge};
pub use seq::compile_sequential;
pub use unroll::compile_unrolled;
