//! Unroll-and-schedule baseline.
//!
//! `U` if-converted copies of the body are concatenated into one
//! straight-line region and list-scheduled together. Scratch registers
//! (defined before use within an iteration) are renamed per copy so copies
//! can overlap; loop-carried registers keep their architectural names and
//! serialize naturally. Each copy's control matrices are shifted one column
//! so that predicates of different copies are distinct — complementary
//! branches prune dependences only *within* a copy.
//!
//! The BREAK protocol of [`crate::depgraph`] keeps early exits correct for
//! trip counts not divisible by `U`.

use crate::depgraph::build_deps;
use crate::ifconv::if_convert;
use crate::listsched::list_schedule;
use psp_ir::{CcReg, LoopSpec, Operation, Reg, RegRef};
use psp_machine::{MachineConfig, Succ, VliwBlock, VliwLoop, VliwTerm};
use psp_predicate::PredicateMatrix;
use std::collections::BTreeMap;

/// Registers whose first occurrence in the op list is a pure definition
/// and which are neither live-in nor live-out (safe to rename per copy —
/// a live-out register written before ever being read, like a search
/// result, must keep its architectural name).
fn def_first_regs(ops: &[(Operation, PredicateMatrix)], spec: &LoopSpec) -> (Vec<Reg>, Vec<CcReg>) {
    let mut seen_use: Vec<RegRef> = Vec::new();
    let mut first_def: Vec<RegRef> = Vec::new();
    for (op, _) in ops {
        let defs = op.defs();
        for u in op.uses() {
            if !first_def.contains(&u) && !seen_use.contains(&u) {
                seen_use.push(u);
            }
        }
        for d in defs {
            // `r = r + 1` uses r first — uses() above already recorded it.
            if !seen_use.contains(&d) && !first_def.contains(&d) {
                first_def.push(d);
            }
        }
    }
    let mut gprs = Vec::new();
    let mut ccs = Vec::new();
    for r in first_def {
        if spec.live_in.contains(&r) || spec.live_out.contains(&r) {
            continue;
        }
        match r {
            RegRef::Gpr(g) => gprs.push(g),
            RegRef::Cc(c) => ccs.push(c),
        }
    }
    (gprs, ccs)
}

/// Unroll the loop `factor` times and schedule the result as one block.
pub fn compile_unrolled(spec: &LoopSpec, factor: u32, m: &MachineConfig) -> VliwLoop {
    assert!(factor >= 1, "unroll factor must be at least 1");
    let ic = if_convert(spec);
    let mut bank = ic.spec.clone();
    let (scratch_gprs, scratch_ccs) = def_first_regs(&ic.ops, &ic.spec);

    let mut all_ops: Vec<(Operation, PredicateMatrix)> = Vec::new();
    for u in 0..factor {
        let mut gmap: BTreeMap<Reg, Reg> = BTreeMap::new();
        let mut cmap: BTreeMap<CcReg, CcReg> = BTreeMap::new();
        if u > 0 {
            for &r in &scratch_gprs {
                gmap.insert(r, bank.fresh_reg());
            }
            for &c in &scratch_ccs {
                cmap.insert(c, bank.fresh_cc());
            }
        }
        for (op, ctrl) in &ic.ops {
            let mut o = *op;
            for (&from, &to) in &gmap {
                o = o.renamed_gpr(from, to);
            }
            for (&from, &to) in &cmap {
                o = o.renamed_cc(from, to);
            }
            // Copy u's predicates live in column u: distinct instances.
            all_ops.push((o, ctrl.shifted(u as i32)));
        }
    }

    let deps = build_deps(&all_ops, &bank.live_out, m);
    let cycles = list_schedule(&all_ops, &deps, m);
    let block = VliwBlock {
        id: 0,
        matrix: PredicateMatrix::universe(),
        cycles,
        term: VliwTerm::Jump(Succ::back(0)),
    };
    let prog = VliwLoop {
        name: format!("{}-unroll{}", spec.name, factor),
        prologue: vec![],
        blocks: vec![block],
        entry: 0,
        epilogue: vec![],
    };
    psp_machine::hook::check("compile_unrolled", spec, m, &prog);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_kernels::{all_kernels, by_name, KernelData};
    use psp_sim::{check_equivalence, EquivConfig};

    #[test]
    fn unroll1_equals_local_shape() {
        let kernel = by_name("vecmin").unwrap();
        let m = MachineConfig::paper_default();
        let prog = compile_unrolled(&kernel.spec, 1, &m);
        prog.validate(&m).unwrap();
        // Without induction renaming the single-copy schedule may take one
        // extra cycle vs compile_local; it must still be well-formed and
        // correct.
        let data = KernelData::random(3, 20);
        let init = kernel.initial_state(&data);
        check_equivalence(&kernel.spec, &prog, &init, 1_000_000).unwrap();
    }

    #[test]
    fn all_kernels_unrolled_equivalent() {
        let m = MachineConfig::paper_default();
        for factor in [2u32, 4] {
            for kernel in all_kernels() {
                let prog = compile_unrolled(&kernel.spec, factor, &m);
                prog.validate(&m)
                    .unwrap_or_else(|e| panic!("{} x{factor}: {e}", kernel.name));
                for (seed, len) in EquivConfig::new(3, factor as u64 * 100).trial_inputs() {
                    let data = KernelData::random(seed, len);
                    let init = kernel.initial_state(&data);
                    let (_, run) = check_equivalence(&kernel.spec, &prog, &init, 1_000_000)
                        .unwrap_or_else(|e| panic!("{} x{factor} len{len}: {e}", kernel.name));
                    kernel.check(&run.state, &data).unwrap();
                }
            }
        }
    }

    #[test]
    fn unrolling_amortizes_cycles_per_iteration() {
        let m = MachineConfig::paper_default();
        let kernel = by_name("cond_sum").unwrap();
        let u1 = compile_unrolled(&kernel.spec, 1, &m);
        let u4 = compile_unrolled(&kernel.spec, 4, &m);
        let data = KernelData::random(9, 256);
        let init = kernel.initial_state(&data);
        let (_, r1) = check_equivalence(&kernel.spec, &u1, &init, 10_000_000).unwrap();
        let (_, r4) = check_equivalence(&kernel.spec, &u4, &init, 10_000_000).unwrap();
        assert!(
            r4.body_cycles < r1.body_cycles,
            "x4 {} !< x1 {}",
            r4.body_cycles,
            r1.body_cycles
        );
    }

    #[test]
    fn early_exit_live_out_survives_unrolling() {
        // Regression: `found` in find_first is live-out but written before
        // any read, so a naive def-first analysis renamed it per copy and
        // lost results from copies 1..U-1.
        let kernel = by_name("find_first").unwrap();
        let m = MachineConfig::paper_default();
        let prog = compile_unrolled(&kernel.spec, 4, &m);
        for pos in 0..8usize {
            let mut data = KernelData::random(1, 8);
            for v in data.x.iter_mut() {
                *v = 5;
            }
            data.x[pos] = 0;
            let data = data.with_threshold(0);
            let init = kernel.initial_state(&data);
            let (_, run) = check_equivalence(&kernel.spec, &prog, &init, 1_000_000)
                .unwrap_or_else(|e| panic!("pos {pos}: {e}"));
            kernel
                .check(&run.state, &data)
                .unwrap_or_else(|e| panic!("pos {pos}: {e}"));
        }
    }

    #[test]
    fn def_first_analysis_separates_scratch_from_carried() {
        let kernel = by_name("vecmin").unwrap();
        let ic = if_convert(&kernel.spec);
        let (gprs, ccs) = def_first_regs(&ic.ops, &ic.spec);
        // xk, xm are scratch; n, k, m are used first (live-in / carried).
        assert_eq!(gprs.len(), 2);
        assert_eq!(ccs.len(), 2); // cc0, cc1 defined before use
    }
}
