//! Sequential baseline: one operation per cycle, structured control flow
//! preserved as a block CFG (the paper's §1.1 sequential machine).

use psp_ir::{op::build, Item, LoopSpec};
use psp_machine::{BlockId, Succ, VliwBlock, VliwLoop, VliwTerm};
use psp_predicate::{PredElem, PredicateMatrix};

/// Compile a loop for a strictly sequential machine.
///
/// Every operation, including IFs and BREAKs, occupies its own cycle. The
/// per-path II of the result equals the paper's sequential iteration
/// latencies (7 and 8 cycles for vecmin).
pub fn compile_sequential(spec: &LoopSpec) -> VliwLoop {
    let mut blocks: Vec<VliwBlock> = Vec::new();
    let entry = new_block(&mut blocks, PredicateMatrix::universe());
    let last = emit_items(
        &spec.items,
        entry,
        &PredicateMatrix::universe(),
        &mut blocks,
    );
    blocks[last].term = VliwTerm::Jump(Succ::back(entry));
    let prog = VliwLoop {
        name: format!("{}-seq", spec.name),
        prologue: vec![],
        blocks,
        entry,
        epilogue: vec![],
    };
    psp_machine::hook::check(
        "compile_sequential",
        spec,
        &psp_machine::MachineConfig::sequential(),
        &prog,
    );
    prog
}

fn new_block(blocks: &mut Vec<VliwBlock>, matrix: PredicateMatrix) -> BlockId {
    let id = blocks.len();
    blocks.push(VliwBlock {
        id,
        matrix,
        cycles: Vec::new(),
        term: VliwTerm::Exit, // replaced by the caller
    });
    id
}

fn emit_items(
    items: &[Item],
    mut cur: BlockId,
    ctrl: &PredicateMatrix,
    blocks: &mut Vec<VliwBlock>,
) -> BlockId {
    for item in items {
        match item {
            Item::Op(op) => blocks[cur].cycles.push(vec![*op]),
            Item::Break(b) => blocks[cur].cycles.push(vec![build::break_(b.cc)]),
            Item::If(i) => {
                blocks[cur].cycles.push(vec![build::if_(i.cc)]);
                let then_ctrl = ctrl.with(i.if_id, 0, PredElem::True);
                let else_ctrl = ctrl.with(i.if_id, 0, PredElem::False);
                let then_b = new_block(blocks, then_ctrl.clone());
                let else_b = new_block(blocks, else_ctrl.clone());
                blocks[cur].term = VliwTerm::Branch {
                    cc: i.cc,
                    on_true: Succ::fall(then_b),
                    on_false: Succ::fall(else_b),
                };
                let then_end = emit_items(&i.then_items, then_b, &then_ctrl, blocks);
                let else_end = emit_items(&i.else_items, else_b, &else_ctrl, blocks);
                let cont = new_block(blocks, ctrl.clone());
                blocks[then_end].term = VliwTerm::Jump(Succ::fall(cont));
                blocks[else_end].term = VliwTerm::Jump(Succ::fall(cont));
                cur = cont;
            }
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_machine::MachineConfig;

    #[test]
    fn vecmin_sequential_ii_is_7_and_8() {
        let k = psp_kernels::by_name("vecmin").unwrap();
        let prog = compile_sequential(&k.spec);
        prog.validate(&MachineConfig::sequential()).unwrap();
        let (min, max) = prog.ii_range().unwrap();
        assert_eq!((min, max), (7, 8), "paper §1.1: II = 7 and 8");
    }

    #[test]
    fn all_kernels_sequentially_equivalent() {
        for kernel in psp_kernels::all_kernels() {
            let prog = compile_sequential(&kernel.spec);
            prog.validate(&MachineConfig::sequential()).unwrap();
            for (seed, len) in psp_sim::EquivConfig::new(3, 100).trial_inputs() {
                let data = psp_kernels::KernelData::random(seed, len);
                let init = kernel.initial_state(&data);
                let (_, run) = psp_sim::check_equivalence(&kernel.spec, &prog, &init, 1_000_000)
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
                kernel.check(&run.state, &data).unwrap();
            }
        }
    }

    #[test]
    fn sequential_cycles_match_reference_cycles() {
        // The sequential VLIW encoding spends exactly as many body cycles
        // as the reference interpreter spends operations.
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let prog = compile_sequential(&kernel.spec);
        let data = psp_kernels::KernelData::random(5, 50);
        let init = kernel.initial_state(&data);
        let (gold, run) =
            psp_sim::check_equivalence(&kernel.spec, &prog, &init, 1_000_000).unwrap();
        assert_eq!(gold.cycles, run.body_cycles);
        assert_eq!(gold.iterations, run.iterations);
    }

    #[test]
    fn branch_blocks_carry_path_matrices() {
        let kernel = psp_kernels::by_name("clamp_store").unwrap();
        let prog = compile_sequential(&kernel.spec);
        // Some block must carry the nested matrix [0 ; 1] (outer False,
        // inner True).
        let want = PredicateMatrix::from_entries([(0, 0, false), (1, 0, true)]);
        assert!(prog.blocks.iter().any(|b| b.matrix == want));
    }
}
