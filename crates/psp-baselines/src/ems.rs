//! EMS-style baseline: if-conversion + iterative modulo scheduling with a
//! single fixed initiation interval.
//!
//! Represents the single-II technique class the paper contrasts with
//! (Warter et al.'s Enhanced Modulo Scheduling \[12], GURPR* \[10], GPMB
//! \[11]). The scheduler finds the smallest II for which a modulo schedule
//! of the if-converted body exists under the machine's resources and all
//! dependences — including the cross-iteration constraint that observable
//! operations (stores, live-out definitions) of iteration `i+1` may not
//! execute before iteration `i`'s `BREAK` resolves, which is precisely the
//! handicap variable-II techniques avoid.
//!
//! The constraint system ([`psp_opt::all_edges`]), the verified
//! [`ModuloSchedule`] container, and the search floor
//! (`max(res_mii, rec_mii)`, see [`psp_opt::bounds`]) are shared with the
//! exact branch-and-bound certifier in `psp-opt`, so the greedy II found
//! here is a feasible point of the exact solver's search space and
//! `exact II ≤ EMS II` holds by construction. Executable kernel code for a
//! verified schedule comes from [`psp_opt::modulo_to_vliw`].

use psp_opt::depgraph::build_deps;
use psp_opt::ifconv::if_convert;
use psp_opt::rename::rename_inductions;
pub use psp_opt::{all_edges, ModEdge, ModuloSchedule};

use psp_ir::{LoopSpec, Operation};
use psp_machine::{MachineConfig, ResourceUse};
use psp_predicate::PredicateMatrix;

/// Find the smallest feasible single II by iterative modulo scheduling.
pub fn modulo_schedule(spec: &LoopSpec, m: &MachineConfig) -> ModuloSchedule {
    let mut ic = if_convert(spec);
    rename_inductions(&mut ic.ops, &mut ic.spec);
    let ops = ic.ops;
    let live_out = ic.spec.live_out.clone();
    let edges = all_edges(&ops, &live_out, m);
    let intra = build_deps(&ops, &live_out, m);
    let heights = intra.heights();

    let mii = psp_opt::res_mii(&ops, m).max(psp_opt::rec_mii(ops.len(), &edges));
    let max_ii = (4 * ops.len() as u32).max(mii + 8);
    for ii in mii..=max_ii {
        if let Some(time) = try_schedule(&ops, &edges, &heights, ii, m) {
            let stages = time.iter().map(|&t| t as u32 / ii).max().unwrap_or(0) + 1;
            let sched = ModuloSchedule {
                ii,
                time,
                stages,
                ops,
                edges,
            };
            debug_assert!(sched.verify(m).is_ok());
            psp_opt::hook::check("ems", &live_out, m, &sched);
            return sched;
        }
    }
    unreachable!("modulo scheduling must succeed at II = schedule length");
}

/// One greedy placement attempt at a fixed II.
fn try_schedule(
    ops: &[(Operation, PredicateMatrix)],
    edges: &[ModEdge],
    heights: &[u32],
    ii: u32,
    m: &MachineConfig,
) -> Option<Vec<usize>> {
    let n = ops.len();
    // Topological order of the distance-0 subgraph = program order (edges
    // only go forward), prioritized by height within ready sets is not
    // needed for feasibility; schedule in order of decreasing height with
    // program order as tiebreak, but never before intra-iteration preds.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(heights[i]), i));

    let mut time: Vec<Option<usize>> = vec![None; n];
    let mut table = vec![ResourceUse::empty(); ii as usize];
    let horizon = 4 * n + 4 * ii as usize + 16;

    // Respect program order among dependent ops: process in program order
    // (simple and always feasible for a large-enough II), refining by
    // height only among independent ops is omitted for determinism.
    let _ = order;
    for i in 0..n {
        let mut est: i64 = 0;
        for e in edges.iter().filter(|e| e.to == i) {
            if let Some(tf) = time[e.from] {
                est = est.max(tf as i64 + e.lat as i64 - (ii as i64) * e.dist as i64);
            }
        }
        let start = est.max(0) as usize;
        let mut placed = false;
        for t in start..start + ii as usize {
            if t > horizon {
                break;
            }
            let slot = t % ii as usize;
            if table[slot].can_accept(ops[i].0.res_class(), m) {
                table[slot].add(&ops[i].0);
                time[i] = Some(t);
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    let time: Vec<usize> = time.into_iter().map(Option::unwrap).collect();
    // Verify all edges (cross edges to later-scheduled ops were unknown at
    // placement time).
    for e in edges {
        if (time[e.to] as i64 + (ii as i64) * e.dist as i64) < (time[e.from] as i64 + e.lat as i64)
        {
            return None;
        }
    }
    Some(time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_kernels::{all_kernels, by_name};

    #[test]
    fn vecmin_single_ii_is_small_and_verified() {
        let kernel = by_name("vecmin").unwrap();
        let m = MachineConfig::paper_default();
        let s = modulo_schedule(&kernel.spec, &m);
        s.verify(&m).unwrap();
        assert!(s.ii >= 1 && s.ii <= 4, "got II {}", s.ii);
    }

    #[test]
    fn all_kernels_schedule_and_verify() {
        let m = MachineConfig::paper_default();
        for kernel in all_kernels() {
            let s = modulo_schedule(&kernel.spec, &m);
            s.verify(&m)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            assert!(s.stages >= 1);
        }
    }

    #[test]
    fn narrow_machine_raises_ii() {
        let kernel = by_name("vecmin").unwrap();
        let wide = modulo_schedule(&kernel.spec, &MachineConfig::paper_default());
        let narrow = modulo_schedule(&kernel.spec, &MachineConfig::narrow(1, 1, 1));
        assert!(narrow.ii > wide.ii);
        narrow.verify(&MachineConfig::narrow(1, 1, 1)).unwrap();
    }

    #[test]
    fn res_mii_lower_bound_holds() {
        let m = MachineConfig::narrow(2, 1, 1);
        for kernel in all_kernels() {
            let s = modulo_schedule(&kernel.spec, &m);
            let ic = if_convert(&kernel.spec);
            assert!(
                s.ii >= ModuloSchedule::res_mii(&ic.ops, &m),
                "{}",
                kernel.name
            );
        }
    }

    #[test]
    fn greedy_ii_never_beats_the_certified_floor() {
        let m = MachineConfig::paper_default();
        for kernel in all_kernels() {
            let s = modulo_schedule(&kernel.spec, &m);
            let lb = psp_opt::mii_lower_bound(&kernel.spec, &m);
            assert!(s.ii >= lb, "{}: II {} < floor {lb}", kernel.name, s.ii);
        }
    }

    #[test]
    fn estimated_cycles_scale_with_ii() {
        let kernel = by_name("vecmin").unwrap();
        let m = MachineConfig::paper_default();
        let s = modulo_schedule(&kernel.spec, &m);
        let c100 = s.estimated_cycles(100);
        let c200 = s.estimated_cycles(200);
        assert_eq!(c200 - c100, 100 * s.ii as u64);
    }

    #[test]
    fn store_kernels_pay_the_exit_speculation_tax() {
        // With stores forced behind the previous iteration's BREAK, the
        // single II of a store kernel cannot reach the no-store bound.
        let m = MachineConfig::paper_default();
        let s = modulo_schedule(&by_name("sign_store").unwrap().spec, &m);
        assert!(s.ii >= 2, "exit speculation constraint should bind");
    }
}
