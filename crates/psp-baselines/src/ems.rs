//! EMS-style baseline: if-conversion + iterative modulo scheduling with a
//! single fixed initiation interval.
//!
//! Represents the single-II technique class the paper contrasts with
//! (Warter et al.'s Enhanced Modulo Scheduling \[12], GURPR* \[10], GPMB
//! \[11]). The scheduler finds the smallest II for which a modulo schedule
//! of the if-converted body exists under the machine's resources and all
//! dependences — including the cross-iteration constraint that observable
//! operations (stores, live-out definitions) of iteration `i+1` may not
//! execute before iteration `i`'s `BREAK` resolves, which is precisely the
//! handicap variable-II techniques avoid.
//!
//! The returned [`ModuloSchedule`] is machine-checked ([`ModuloSchedule::verify`])
//! and provides an idealized cycle model ([`ModuloSchedule::estimated_cycles`]);
//! kernel code generation with modulo variable expansion is out of scope
//! (DESIGN.md §4).

use crate::depgraph::{build_deps, induction_strides};
use crate::ifconv::if_convert;
use crate::rename::rename_inductions;
use psp_ir::{mem_access, LoopSpec, Operation, RegRef};
use psp_machine::{MachineConfig, ResourceUse};
use psp_predicate::PredicateMatrix;

/// A dependence edge with iteration distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModEdge {
    /// Source operation index.
    pub from: usize,
    /// Target operation index.
    pub to: usize,
    /// Latency.
    pub lat: u32,
    /// Iteration distance (0 = same iteration).
    pub dist: u32,
}

/// A verified modulo schedule.
#[derive(Debug, Clone)]
pub struct ModuloSchedule {
    /// The initiation interval.
    pub ii: u32,
    /// Absolute issue slot of each operation within one iteration's
    /// schedule (slot / ii = stage).
    pub time: Vec<usize>,
    /// Number of overlapped stages.
    pub stages: u32,
    /// The scheduled operations (if-converted, renamed).
    pub ops: Vec<(Operation, PredicateMatrix)>,
    /// All dependence edges used.
    pub edges: Vec<ModEdge>,
}

impl ModuloSchedule {
    /// Check every dependence (`t_to + II·dist ≥ t_from + lat`) and the
    /// modulo resource table.
    pub fn verify(&self, m: &MachineConfig) -> Result<(), String> {
        for e in &self.edges {
            let lhs = self.time[e.to] as i64 + (self.ii as i64) * e.dist as i64;
            let rhs = self.time[e.from] as i64 + e.lat as i64;
            if lhs < rhs {
                return Err(format!(
                    "edge {}→{} (lat {}, dist {}) violated: {} < {}",
                    e.from, e.to, e.lat, e.dist, lhs, rhs
                ));
            }
        }
        let mut table = vec![ResourceUse::empty(); self.ii as usize];
        for (i, &t) in self.time.iter().enumerate() {
            table[t % self.ii as usize].add(&self.ops[i].0);
        }
        for (slot, u) in table.iter().enumerate() {
            if !u.fits(m) {
                return Err(format!("modulo slot {slot} over-subscribed"));
            }
        }
        Ok(())
    }

    /// Idealized dynamic cycles for `iterations` iterations: fill the
    /// pipeline once, then one II per iteration.
    pub fn estimated_cycles(&self, iterations: u64) -> u64 {
        (self.stages.saturating_sub(1) as u64) * self.ii as u64 + iterations * self.ii as u64
    }

    /// Resource-constrained lower bound on II for these ops.
    pub fn res_mii(ops: &[(Operation, PredicateMatrix)], m: &MachineConfig) -> u32 {
        let mut u = ResourceUse::empty();
        for (op, _) in ops {
            u.add(op);
        }
        let ceil = |a: u32, b: u32| a.div_ceil(b.max(1));
        ceil(u.alu, m.n_alu)
            .max(ceil(u.mem, m.n_mem))
            .max(ceil(u.branch, m.n_branch))
            .max(1)
    }
}

/// Is this operation observable after a loop exit (store / live-out def)?
fn is_observable(op: &Operation, live_out: &[RegRef]) -> bool {
    op.is_store() || op.defs().iter().any(|d| live_out.contains(d))
}

/// All edges: intra-iteration (from [`build_deps`]) plus distance-1
/// cross-iteration register, memory, and BREAK-speculation edges.
fn all_edges(
    ops: &[(Operation, PredicateMatrix)],
    live_out: &[RegRef],
    m: &MachineConfig,
) -> Vec<ModEdge> {
    let intra = build_deps(ops, live_out, m);
    let mut edges: Vec<ModEdge> = Vec::new();
    for (i, succ) in intra.succs.iter().enumerate() {
        for &(j, lat) in succ {
            edges.push(ModEdge {
                from: i,
                to: j,
                lat,
                dist: 0,
            });
        }
    }
    let strides = induction_strides(ops);
    let stride_of = |r: psp_ir::Reg| strides.get(&r).copied();
    // Cross-iteration edges (distance 1). No disjointness pruning: the
    // predicates of different iterations are distinct instances.
    for i in 0..ops.len() {
        for j in 0..ops.len() {
            let (a, _) = &ops[i];
            let (b, _) = &ops[j];
            // Flow: def in iteration k, use in iteration k+1 that reads it
            // (uses at positions ≤ i read the previous iteration's value).
            if j <= i && a.defs().iter().any(|d| b.uses().contains(d)) {
                edges.push(ModEdge {
                    from: i,
                    to: j,
                    lat: m.latency(a),
                    dist: 1,
                });
            }
            // Anti and output, distance 1 (usually slack, kept for rigor).
            if a.uses().iter().any(|u| b.defs().contains(u)) {
                edges.push(ModEdge {
                    from: i,
                    to: j,
                    lat: 0,
                    dist: 1,
                });
            }
            if a.defs().iter().any(|d| b.defs().contains(d)) {
                edges.push(ModEdge {
                    from: i,
                    to: j,
                    lat: 1,
                    dist: 1,
                });
            }
            // Memory at distance 1 (kernel addresses are unit-stride
            // affine with zero displacement, so distance ≥ 2 cannot alias
            // when distance 1 does not).
            if let (Some(ma), Some(mb)) = (mem_access(a), mem_access(b)) {
                if ma.interferes(&mb) && ma.may_alias(&mb, 1, stride_of) {
                    let lat = match (ma.kind, mb.kind) {
                        (psp_ir::AccessKind::Write, psp_ir::AccessKind::Read) => 1,
                        (psp_ir::AccessKind::Read, psp_ir::AccessKind::Write) => 0,
                        _ => 1,
                    };
                    edges.push(ModEdge {
                        from: i,
                        to: j,
                        lat,
                        dist: 1,
                    });
                }
            }
            // No speculation across the exit: observables of iteration k+1
            // wait for iteration k's BREAKs.
            if a.is_break() && (is_observable(b, live_out) || b.is_break()) {
                edges.push(ModEdge {
                    from: i,
                    to: j,
                    lat: 1,
                    dist: 1,
                });
            }
        }
    }
    edges
}

/// Find the smallest feasible single II by iterative modulo scheduling.
pub fn modulo_schedule(spec: &LoopSpec, m: &MachineConfig) -> ModuloSchedule {
    let mut ic = if_convert(spec);
    rename_inductions(&mut ic.ops, &mut ic.spec);
    let ops = ic.ops;
    let live_out = ic.spec.live_out.clone();
    let edges = all_edges(&ops, &live_out, m);
    let intra = build_deps(&ops, &live_out, m);
    let heights = intra.heights();

    let mii = ModuloSchedule::res_mii(&ops, m);
    let max_ii = (4 * ops.len() as u32).max(mii + 8);
    for ii in mii..=max_ii {
        if let Some(time) = try_schedule(&ops, &edges, &heights, ii, m) {
            let stages = time.iter().map(|&t| t as u32 / ii).max().unwrap_or(0) + 1;
            let sched = ModuloSchedule {
                ii,
                time,
                stages,
                ops,
                edges,
            };
            debug_assert!(sched.verify(m).is_ok());
            return sched;
        }
    }
    unreachable!("modulo scheduling must succeed at II = schedule length");
}

/// One greedy placement attempt at a fixed II.
fn try_schedule(
    ops: &[(Operation, PredicateMatrix)],
    edges: &[ModEdge],
    heights: &[u32],
    ii: u32,
    m: &MachineConfig,
) -> Option<Vec<usize>> {
    let n = ops.len();
    // Topological order of the distance-0 subgraph = program order (edges
    // only go forward), prioritized by height within ready sets is not
    // needed for feasibility; schedule in order of decreasing height with
    // program order as tiebreak, but never before intra-iteration preds.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(heights[i]), i));

    let mut time: Vec<Option<usize>> = vec![None; n];
    let mut table = vec![ResourceUse::empty(); ii as usize];
    let horizon = 4 * n + 4 * ii as usize + 16;

    // Respect program order among dependent ops: process in program order
    // (simple and always feasible for a large-enough II), refining by
    // height only among independent ops is omitted for determinism.
    let _ = order;
    for i in 0..n {
        let mut est: i64 = 0;
        for e in edges.iter().filter(|e| e.to == i) {
            if let Some(tf) = time[e.from] {
                est = est.max(tf as i64 + e.lat as i64 - (ii as i64) * e.dist as i64);
            }
        }
        let start = est.max(0) as usize;
        let mut placed = false;
        for t in start..start + ii as usize {
            if t > horizon {
                break;
            }
            let slot = t % ii as usize;
            if table[slot].can_accept(ops[i].0.res_class(), m) {
                table[slot].add(&ops[i].0);
                time[i] = Some(t);
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    let time: Vec<usize> = time.into_iter().map(Option::unwrap).collect();
    // Verify all edges (cross edges to later-scheduled ops were unknown at
    // placement time).
    for e in edges {
        if (time[e.to] as i64 + (ii as i64) * e.dist as i64) < (time[e.from] as i64 + e.lat as i64)
        {
            return None;
        }
    }
    Some(time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_kernels::{all_kernels, by_name};

    #[test]
    fn vecmin_single_ii_is_small_and_verified() {
        let kernel = by_name("vecmin").unwrap();
        let m = MachineConfig::paper_default();
        let s = modulo_schedule(&kernel.spec, &m);
        s.verify(&m).unwrap();
        assert!(s.ii >= 1 && s.ii <= 4, "got II {}", s.ii);
    }

    #[test]
    fn all_kernels_schedule_and_verify() {
        let m = MachineConfig::paper_default();
        for kernel in all_kernels() {
            let s = modulo_schedule(&kernel.spec, &m);
            s.verify(&m)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            assert!(s.stages >= 1);
        }
    }

    #[test]
    fn narrow_machine_raises_ii() {
        let kernel = by_name("vecmin").unwrap();
        let wide = modulo_schedule(&kernel.spec, &MachineConfig::paper_default());
        let narrow = modulo_schedule(&kernel.spec, &MachineConfig::narrow(1, 1, 1));
        assert!(narrow.ii > wide.ii);
        narrow.verify(&MachineConfig::narrow(1, 1, 1)).unwrap();
    }

    #[test]
    fn res_mii_lower_bound_holds() {
        let m = MachineConfig::narrow(2, 1, 1);
        for kernel in all_kernels() {
            let s = modulo_schedule(&kernel.spec, &m);
            let ic = if_convert(&kernel.spec);
            assert!(
                s.ii >= ModuloSchedule::res_mii(&ic.ops, &m),
                "{}",
                kernel.name
            );
        }
    }

    #[test]
    fn estimated_cycles_scale_with_ii() {
        let kernel = by_name("vecmin").unwrap();
        let m = MachineConfig::paper_default();
        let s = modulo_schedule(&kernel.spec, &m);
        let c100 = s.estimated_cycles(100);
        let c200 = s.estimated_cycles(200);
        assert_eq!(c200 - c100, 100 * s.ii as u64);
    }

    #[test]
    fn store_kernels_pay_the_exit_speculation_tax() {
        // With stores forced behind the previous iteration's BREAK, the
        // single II of a store kernel cannot reach the no-store bound.
        let m = MachineConfig::paper_default();
        let s = modulo_schedule(&by_name("sign_store").unwrap().spec, &m);
        assert!(s.ii >= 2, "exit speculation constraint should bind");
    }
}
