//! Height-priority cycle-by-cycle list scheduler.

use crate::depgraph::DepGraph;
use psp_ir::Operation;
use psp_machine::{MachineConfig, ResourceUse};
use psp_predicate::PredicateMatrix;

/// Schedule `ops` into cycles honoring `deps` and the machine's per-cycle
/// resource limits. Returns one operation list per cycle (no empty trailing
/// cycles; intermediate cycles may be empty when latencies force gaps).
pub fn list_schedule(
    ops: &[(Operation, PredicateMatrix)],
    deps: &DepGraph,
    m: &MachineConfig,
) -> Vec<Vec<Operation>> {
    let n = ops.len();
    let heights = deps.heights();
    let mut cycle_of: Vec<Option<usize>> = vec![None; n];
    let mut unscheduled: Vec<usize> = (0..n).collect();
    let mut cycles: Vec<Vec<Operation>> = Vec::new();
    let mut uses: Vec<ResourceUse> = Vec::new();
    let mut t = 0usize;

    while !unscheduled.is_empty() {
        if cycles.len() <= t {
            cycles.push(Vec::new());
            uses.push(ResourceUse::empty());
        }
        // Fixpoint within the cycle: placing an operation can make its
        // latency-0 successors ready in the same cycle (e.g. a BREAK that
        // may share a cycle with the store it is ordered after).
        loop {
            // Ready at t: all predecessors scheduled with satisfied latency.
            let mut ready: Vec<usize> = unscheduled
                .iter()
                .copied()
                .filter(|&i| {
                    deps.preds[i]
                        .iter()
                        .all(|&(p, lat)| cycle_of[p].is_some_and(|cp| cp + lat as usize <= t))
                })
                .collect();
            // Highest first; ties broken by source order for determinism.
            ready.sort_by_key(|&i| (std::cmp::Reverse(heights[i]), i));
            let mut placed_any = false;
            for i in ready {
                let class = ops[i].0.res_class();
                if uses[t].can_accept(class, m) {
                    uses[t].add(&ops[i].0);
                    cycles[t].push(ops[i].0);
                    cycle_of[i] = Some(t);
                    unscheduled.retain(|&j| j != i);
                    placed_any = true;
                }
            }
            if !placed_any {
                break;
            }
        }
        t += 1;
        assert!(
            t <= 4 * n + 64,
            "list scheduler failed to converge (cyclic dependence graph?)"
        );
    }
    while cycles.last().is_some_and(Vec::is_empty) {
        cycles.pop();
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::build_deps;
    use crate::ifconv::if_convert;
    use crate::rename::rename_inductions;
    use psp_ir::op::build::*;
    use psp_ir::Reg;

    fn u() -> PredicateMatrix {
        PredicateMatrix::universe()
    }

    #[test]
    fn independent_ops_pack_into_one_cycle() {
        let m = MachineConfig::paper_default();
        let ops: Vec<_> = (0..4).map(|i| (copy(Reg(i), 1i64), u())).collect();
        let deps = build_deps(&ops, &[], &m);
        let cycles = list_schedule(&ops, &deps, &m);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 4);
    }

    #[test]
    fn resource_limits_split_cycles() {
        let m = MachineConfig::narrow(2, 1, 1);
        let ops: Vec<_> = (0..4).map(|i| (copy(Reg(i), 1i64), u())).collect();
        let deps = build_deps(&ops, &[], &m);
        let cycles = list_schedule(&ops, &deps, &m);
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn chain_respects_latency() {
        let m = MachineConfig::paper_default();
        let ops = vec![
            (add(Reg(0), Reg(1), 1i64), u()),
            (add(Reg(2), Reg(0), 1i64), u()),
            (add(Reg(3), Reg(2), 1i64), u()),
        ];
        let deps = build_deps(&ops, &[], &m);
        let cycles = list_schedule(&ops, &deps, &m);
        assert_eq!(cycles.len(), 3);
    }

    #[test]
    fn two_cycle_load_latency_creates_gap() {
        let m = MachineConfig {
            load_latency: 3,
            ..MachineConfig::paper_default()
        };
        let ops = vec![
            (load(Reg(0), psp_ir::ArrayId(0), Reg(1)), u()),
            (add(Reg(2), Reg(0), 1i64), u()),
        ];
        let deps = build_deps(&ops, &[], &m);
        let cycles = list_schedule(&ops, &deps, &m);
        assert_eq!(cycles.len(), 4);
        assert!(cycles[1].is_empty() && cycles[2].is_empty());
    }

    #[test]
    fn vecmin_local_pipeline_is_three_cycles() {
        // The paper's Fig. 1b: with renaming and sufficient hardware the
        // single-iteration schedule reaches II = 3.
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let mut ic = if_convert(&kernel.spec);
        rename_inductions(&mut ic.ops, &mut ic.spec);
        let m = MachineConfig::paper_default();
        let deps = build_deps(&ic.ops, &ic.spec.live_out, &m);
        let cycles = list_schedule(&ic.ops, &deps, &m);
        assert_eq!(cycles.len(), 3, "paper Fig. 1b: II = 3");
    }
}
