//! Property tests for the exact II certifier (`psp-opt`) on random loops
//! with conditions, reusing the generator of `fuzz_random_loops`.
//!
//! The chain that must hold for every loop the generator can produce:
//!
//! ```text
//! mii_lower_bound  ≤  certified exact II  ≤  greedy EMS II
//! ```
//!
//! — the left inequality because the analytic floor is sound, the right
//! because the greedy schedule is a feasible point of the exact solver's
//! identical constraint system. On budget exhaustion the certifier must
//! degrade to a sound interval containing the EMS II. And any witness
//! schedule, compiled by `psp_opt::modulo_to_vliw`, must be observationally
//! equivalent to the source loop on real inputs.

mod common;

use common::*;
use proptest::prelude::*;
use psp::opt::{certify, Certification, ExactConfig};
use psp::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: CASES,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn exact_ii_is_bracketed_and_executable(body in arb_body()) {
        let spec = build_spec(&body);
        prop_assert!(spec.validate().is_ok(), "generator produced invalid spec");
        let m = MachineConfig::paper_default();

        let ems = modulo_schedule(&spec, &m);
        ems.verify(&m).expect("greedy schedule verifies");
        let lb = mii_lower_bound(&spec, &m);
        prop_assert!(lb <= ems.ii, "floor {lb} above greedy II {}", ems.ii);

        let cfg = ExactConfig { max_nodes: 50_000, max_ii: None };
        let res = certify(&spec, &m, &cfg, Some(ems.ii));
        match res.outcome {
            Certification::Certified(ii) => {
                prop_assert!(lb <= ii && ii <= ems.ii,
                    "certified {ii} outside [{lb}, {}]", ems.ii);
            }
            Certification::Bounded { lb: l, ub } => {
                prop_assert!(lb <= l, "interval floor regressed below the analytic one");
                prop_assert!(ub == Some(ems.ii), "hint must survive as the upper bound");
                prop_assert!(l <= ems.ii, "unsound interval [{l}, {:?}]", ub);
            }
        }
        if let Some(sched) = &res.schedule {
            sched.verify(&m).expect("witness verifies");
            let prog = modulo_to_vliw(sched, "fuzz_exact");
            prog.validate(&m).expect("witness codegen validates");
            check_prog(&spec, &prog, "exact");
        }
    }

    #[test]
    fn exact_ii_brackets_on_a_narrow_machine(body in arb_body()) {
        let spec = build_spec(&body);
        let m = MachineConfig::narrow(2, 1, 1);
        let ems = modulo_schedule(&spec, &m);
        let lb = mii_lower_bound(&spec, &m);
        let cfg = ExactConfig { max_nodes: 50_000, max_ii: None };
        let res = certify(&spec, &m, &cfg, Some(ems.ii));
        prop_assert!(res.outcome.lb() >= lb && res.outcome.lb() <= ems.ii);
        if let Some(sched) = &res.schedule {
            sched.verify(&m).expect("witness verifies");
            check_prog(&spec, &modulo_to_vliw(sched, "fuzz_exact_narrow"), "exact-narrow");
        }
    }
}
