//! Differential fuzzing of the packed predicate backend: random loops with
//! (nested) conditions must pipeline to bit-identical results under the
//! packed bitplane algebra and the sparse reference algebra, and the
//! packed-compiled program must stay observationally equivalent to the
//! source loop. The loop generator is shared with the other fuzz suites
//! (`tests/common/mod.rs`); its nesting depth also drives matrices past
//! the packed column window, exercising the spill path end to end.

mod common;

use common::*;
use proptest::prelude::*;
use psp::predicate::backend::with_backend;
use psp::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: CASES,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn packed_and_sparse_backends_pipeline_identically(body in arb_body()) {
        let spec = build_spec(&body);
        let cfg = PspConfig::default();
        let packed = with_backend(true, || pipeline_loop(&spec, &cfg));
        let sparse = with_backend(false, || pipeline_loop(&spec, &cfg));
        match (packed, sparse) {
            (Ok(p), Ok(s)) => {
                prop_assert_eq!(p.stats.counters(), s.stats.counters());
                prop_assert_eq!(p.program.ii_range(), s.program.ii_range());
                prop_assert_eq!(p.program.to_string(), s.program.to_string());
                prop_assert_eq!(p.schedule.render(), s.schedule.render());
                check_prog(&spec, &p.program, "psp-packed");
            }
            (Err(p), Err(s)) => prop_assert_eq!(p.to_string(), s.to_string()),
            (p, s) => prop_assert!(
                false,
                "backends diverged: packed ok={} sparse ok={}",
                p.is_ok(),
                s.is_ok()
            ),
        }
    }
}
