//! Replay every minimized reproducer under `tests/repros/` through the
//! full `psp-verify` oracle.
//!
//! A reproducer lands here when the fuzzer finds and minimizes a failure;
//! after the fix it remains as a regression test. This suite asserts the
//! oracle — every technique, every independent validator, differential
//! equivalence — runs clean on each file. Replay is pinned to the trusted
//! `step_cycle` interpreter: a reproducer must stand on the reference
//! semantics regardless of which engine found it.

use psp::sim::EngineKind;
use psp::verify::run_oracle_with;
use std::path::PathBuf;

#[test]
fn all_reproducers_replay_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("tests/repros must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("psp") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        let spec = psp::lang::compile(&src)
            .unwrap_or_else(|e| panic!("{}: does not compile: {e}", path.display()));
        if let Err(f) = run_oracle_with(&spec, EngineKind::Interpreter) {
            panic!(
                "{}: oracle fails at stage `{}`: {}",
                path.display(),
                f.stage,
                f.detail
            );
        }
    }
    assert!(seen >= 1, "expected at least the seeded sample reproducer");
}
