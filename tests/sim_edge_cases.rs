//! Simulator edge cases checked differentially across every technique:
//! do-while loops whose BREAK fires on the very first iteration (including
//! `n = 0` and negative trip counts), and a store feeding a load of the
//! same address within one iteration.
//!
//! These are the boundary shapes most likely to expose prologue/epilogue
//! bugs: pipelined code must tear down speculative work when the loop
//! exits before the pipeline ever fills. Every case runs through *both*
//! execution engines — the `step_cycle` interpreter and the pre-decoded
//! engine — so the decoded fast paths see the same boundary shapes.

use psp::prelude::*;
use psp::sim::{check_equivalence_with, MachineState};

const ENGINES: [EngineKind; 2] = [EngineKind::Interpreter, EngineKind::Decoded];

/// Every compilation technique × both execution engines, checked against
/// the reference on one initial state.
fn check_all(spec: &LoopSpec, init: &MachineState, label: &str) {
    let wide = MachineConfig::paper_default();
    let narrow = MachineConfig::narrow(2, 1, 1);
    let progs = [
        ("seq", psp::baselines::compile_sequential(spec)),
        ("local", psp::baselines::compile_local(spec, &wide)),
        ("unroll3", psp::baselines::compile_unrolled(spec, 3, &wide)),
        (
            "psp",
            pipeline_loop(spec, &PspConfig::default())
                .expect("psp pipelines")
                .program,
        ),
        (
            "psp-narrow",
            pipeline_loop(spec, &PspConfig::with_machine(narrow))
                .expect("psp pipelines")
                .program,
        ),
    ];
    for (tech, prog) in &progs {
        for engine in ENGINES {
            check_equivalence_with(spec, prog, init, 1_000_000, engine).unwrap_or_else(|e| {
                panic!("[{label}/{tech}/{}] {e}\n{spec}\n{prog}", engine.label())
            });
        }
    }
}

fn vecmin_state(n: i64, x: Vec<i64>) -> MachineState {
    let spec = by_name("vecmin").unwrap().spec;
    let mut st = MachineState::new(spec.n_regs.max(8), spec.n_ccs.max(4));
    st.regs[0] = n; // n
    st.regs[1] = 0; // k
    st.regs[2] = 0; // m
    st.push_array(x);
    st
}

/// `n = 0`: the do-while body runs exactly once and the BREAK fires
/// immediately — the pipelined prologue must unwind before a single
/// steady-state pass.
#[test]
fn break_taken_on_first_iteration() {
    let spec = by_name("vecmin").unwrap().spec;
    check_all(&spec, &vecmin_state(0, vec![7]), "n=0");
    check_all(&spec, &vecmin_state(1, vec![7]), "n=1");
}

/// Negative trip count: `k >= n` is true from the start for any negative
/// `n`, same single-iteration shape with a different comparison sign.
#[test]
fn negative_trip_count() {
    let spec = by_name("vecmin").unwrap().spec;
    check_all(&spec, &vecmin_state(-3, vec![7]), "n=-3");
}

/// A store feeding a load of the *same address* in the same iteration:
/// the scheduler must keep the W→R pair ordered even across pipelining,
/// and the simulator's memory model must agree with the reference.
#[test]
fn store_then_load_same_address() {
    let spec = psp::lang::compile(
        "kernel storeload(n, k, acc, s0; y[]) -> acc {
            y[k] = acc + 1;
            s0 = y[k];
            acc = acc + s0;
            k = k + 1;
            break if (k >= n);
        }",
    )
    .unwrap();
    for n in [1i64, 2, 7] {
        let mut st = MachineState::new(spec.n_regs.max(8), spec.n_ccs.max(4));
        st.regs[0] = n;
        st.push_array(vec![0; n.max(1) as usize]);
        check_all(&spec, &st, &format!("storeload n={n}"));
    }
}

/// Load before a store to the same address (anti-dependence in memory):
/// the load must see the previous iteration's value, not this one's.
#[test]
fn load_then_store_same_address() {
    let spec = psp::lang::compile(
        "kernel loadstore(n, k, acc, s0; y[]) -> acc {
            s0 = y[k];
            y[k] = s0 + 1;
            acc = acc + s0;
            k = k + 1;
            break if (k >= n);
        }",
    )
    .unwrap();
    for n in [1i64, 5] {
        let mut st = MachineState::new(spec.n_regs.max(8), spec.n_ccs.max(4));
        st.regs[0] = n;
        st.push_array((0..n.max(1)).collect());
        check_all(&spec, &st, &format!("loadstore n={n}"));
    }
}

/// Zero-length data with an immediate exit: the compiled loop must not
/// touch memory past the break on any path the reference never takes.
/// (Array accesses still happen in iteration 0, so the array has one cell.)
#[test]
fn single_cell_arrays_across_all_kernels_smallest_input() {
    for kernel in all_kernels() {
        let data = KernelData::random(99, 1);
        let init = kernel.initial_state(&data);
        let wide = MachineConfig::paper_default();
        let progs = [
            ("seq", psp::baselines::compile_sequential(&kernel.spec)),
            (
                "psp",
                pipeline_loop(&kernel.spec, &PspConfig::default())
                    .expect("psp pipelines")
                    .program,
            ),
            ("local", psp::baselines::compile_local(&kernel.spec, &wide)),
        ];
        for (tech, prog) in &progs {
            for engine in ENGINES {
                check_equivalence_with(&kernel.spec, prog, &init, 1_000_000, engine)
                    .unwrap_or_else(|e| panic!("[{}/{tech}/{}] {e}", kernel.name, engine.label()));
            }
        }
    }
}
