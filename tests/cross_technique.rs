//! Differential testing across compilation techniques: every compiler must
//! produce code observationally equivalent to the reference interpreter on
//! every kernel, across machine widths, trip counts, and adversarial
//! inputs.

use psp::prelude::*;

fn machines() -> Vec<MachineConfig> {
    vec![
        MachineConfig::paper_default(),
        MachineConfig::narrow(2, 1, 1),
        MachineConfig::narrow(1, 1, 1),
        MachineConfig {
            load_latency: 2,
            ..MachineConfig::paper_default()
        },
        MachineConfig {
            load_latency: 3,
            cmp_latency: 2,
            ..MachineConfig::narrow(4, 2, 1)
        },
        MachineConfig {
            speculative_loads: false,
            ..MachineConfig::paper_default()
        },
    ]
}

fn inputs(len: usize) -> Vec<KernelData> {
    let mut out = vec![KernelData::random(1, len), KernelData::random(2, len)];
    // Adversarial shapes.
    let mut all_equal = KernelData::random(3, len);
    all_equal.x.iter_mut().for_each(|v| *v = 7);
    out.push(all_equal);
    let mut sorted = KernelData::random(4, len);
    sorted.x.sort_unstable();
    out.push(sorted);
    let mut reversed = KernelData::random(5, len);
    reversed.x.sort_unstable();
    reversed.x.reverse();
    out.push(reversed);
    let mut alternating = KernelData::random(6, len);
    for (i, v) in alternating.x.iter_mut().enumerate() {
        *v = if i % 2 == 0 { 100 } else { -100 };
    }
    out.push(alternating);
    out
}

fn check(kernel: &Kernel, prog: &VliwLoop, data: &KernelData, label: &str) {
    let init = kernel.initial_state(data);
    let (_, run) = check_equivalence(&kernel.spec, prog, &init, 100_000_000)
        .unwrap_or_else(|e| panic!("{} [{label}]: {e}\n{prog}", kernel.name));
    kernel
        .check(&run.state, data)
        .unwrap_or_else(|e| panic!("[{label}] {e}"));
}

#[test]
fn sequential_equivalent_everywhere() {
    for kernel in all_kernels() {
        let prog = compile_sequential(&kernel.spec);
        for len in [1usize, 2, 3, 17] {
            for data in inputs(len) {
                check(&kernel, &prog, &data, "seq");
            }
        }
    }
}

#[test]
fn local_equivalent_everywhere() {
    for kernel in all_kernels() {
        for m in machines() {
            let prog = compile_local(&kernel.spec, &m);
            for len in [1usize, 2, 13] {
                for data in inputs(len) {
                    check(&kernel, &prog, &data, "local");
                }
            }
        }
    }
}

#[test]
fn unroll_equivalent_everywhere() {
    for kernel in all_kernels() {
        for factor in [2u32, 3, 4] {
            let m = MachineConfig::paper_default();
            let prog = compile_unrolled(&kernel.spec, factor, &m);
            // Trip counts around the unroll factor are the dangerous ones.
            for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 16] {
                for data in inputs(len) {
                    check(&kernel, &prog, &data, "unroll");
                }
            }
        }
    }
}

#[test]
fn psp_equivalent_everywhere() {
    for kernel in all_kernels() {
        for m in machines() {
            let res = pipeline_loop(&kernel.spec, &PspConfig::with_machine(m.clone()))
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            // Short trip counts stress the preloop; long ones the steady
            // state.
            for len in [1usize, 2, 3, 4, 5, 9, 33] {
                for data in inputs(len) {
                    check(&kernel, &res.program, &data, "psp");
                }
            }
        }
    }
}

#[test]
fn psp_profile_guided_equivalent() {
    for name in ["skewed", "two_cond", "cond_sum", "vecmin"] {
        let kernel = by_name(name).unwrap();
        for p in [0.05, 0.5, 0.95] {
            let cfg = PspConfig {
                probs: Some(vec![p; kernel.spec.n_ifs as usize]),
                ..PspConfig::with_machine(MachineConfig::narrow(2, 1, 1))
            };
            let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
            for len in [1usize, 5, 64] {
                for data in inputs(len) {
                    check(&kernel, &res.program, &data, "psp-prob");
                }
            }
        }
    }
}

#[test]
fn ems_schedules_verify_everywhere() {
    for kernel in all_kernels() {
        for m in machines() {
            let s = modulo_schedule(&kernel.spec, &m);
            s.verify(&m)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        }
    }
}
