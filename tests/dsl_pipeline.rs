//! DSL → IR → PSP → simulator, end to end: kernels written as text must
//! lower, pipeline, and execute exactly like their hand-built twins.

use psp::prelude::*;

/// A DSL kernel, its initial-state setup, and a closed-form golden result.
struct Case {
    src: &'static str,
    /// (register index, value) assignments before the run; arrays x (and y
    /// when the kernel names it) are pushed from KernelData.
    setup: fn(&mut MachineState, &KernelData),
    /// (live-out register index, golden function).
    golden: (usize, fn(&KernelData) -> i64),
    uses_y: bool,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            src: "kernel vecmin(n, k, m; x[]) -> m {
                xk = x[k]; xm = x[m];
                if (xk < xm) { m = k; }
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, d| st.regs[0] = d.len() as i64,
            golden: (2, |d| {
                let mut mi = 0;
                for (i, &v) in d.x.iter().enumerate() {
                    if v < d.x[mi] {
                        mi = i;
                    }
                }
                mi as i64
            }),
            uses_y: false,
        },
        Case {
            src: "kernel sumabs(n, k, acc; x[]) -> acc {
                d = x[k];
                if (d < 0) { d = 0 - d; }
                acc = acc + d;
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, d| st.regs[0] = d.len() as i64,
            golden: (2, |d| d.x.iter().map(|v| v.abs()).sum()),
            uses_y: false,
        },
        Case {
            src: "kernel bandpass(n, k, acc, lo, hi; x[]) -> acc {
                v = x[k];
                if (v > lo) {
                    if (v < hi) { acc = acc + v; }
                }
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, d| {
                st.regs[0] = d.len() as i64;
                st.regs[3] = d.lo;
                st.regs[4] = d.hi;
            },
            golden: (2, |d| d.x.iter().filter(|&&v| v > d.lo && v < d.hi).sum()),
            uses_y: false,
        },
        Case {
            src: "kernel relu(n, k; x[], y[]) {
                v = x[k] max 0;
                y[k] = v;
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, d| st.regs[0] = d.len() as i64,
            golden: (1, |d| d.len() as i64), // k at exit
            uses_y: true,
        },
    ]
}

fn run_case(case: &Case, machine: &MachineConfig, len: usize) {
    let spec = psp::lang::compile(case.src).expect("DSL compiles");
    assert!(spec.validate().is_ok());
    let data = KernelData::random(99, len).with_bounds(-40, 40);
    let mut init = MachineState::new(spec.n_regs, spec.n_ccs);
    init.push_array(data.x.clone());
    if case.uses_y {
        init.push_array(data.y.clone());
    }
    (case.setup)(&mut init, &data);

    let res = pipeline_loop(&spec, &PspConfig::with_machine(machine.clone())).expect("pipelines");
    let (golden, run) =
        check_equivalence(&spec, &res.program, &init, 100_000_000).expect("equivalent");
    let (reg, f) = case.golden;
    assert_eq!(golden.state.regs[reg], f(&data), "reference vs golden");
    assert_eq!(run.state.regs[reg], f(&data), "pipelined vs golden");
    if case.uses_y {
        assert_eq!(golden.state.arrays[1], run.state.arrays[1]);
    }
    // Pipelining must actually help on the wide machine.
    if machine.n_alu >= 8 && len >= 64 {
        assert!(run.body_cycles * 2 < golden.cycles, "{}", spec.name);
    }
}

#[test]
fn dsl_kernels_pipeline_and_verify_wide() {
    for case in cases() {
        for len in [1usize, 3, 64] {
            run_case(&case, &MachineConfig::paper_default(), len);
        }
    }
}

#[test]
fn dsl_kernels_pipeline_and_verify_narrow() {
    for case in cases() {
        run_case(&case, &MachineConfig::narrow(2, 1, 1), 33);
    }
}

#[test]
fn dsl_vecmin_equals_handbuilt_vecmin() {
    let dsl = psp::lang::compile(cases()[0].src).unwrap();
    let hand = by_name("vecmin").unwrap().spec;
    // Same op count, IF count, and — after pipelining — the same II.
    assert_eq!(dsl.op_count(), hand.op_count());
    assert_eq!(dsl.n_ifs, hand.n_ifs);
    let a = pipeline_loop(&dsl, &PspConfig::default()).unwrap();
    let b = pipeline_loop(&hand, &PspConfig::default()).unwrap();
    assert_eq!(a.program.ii_range(), b.program.ii_range());
}
