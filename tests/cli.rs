//! End-to-end tests of the `pspc` command-line driver: each subcommand is
//! invoked as a real subprocess on a temp DSL file, and output / exit codes
//! are checked. The `run` and `compare` paths execute the compiled loops
//! and verify them, so these also act as a final system test.

use std::path::PathBuf;
use std::process::{Command, Output};

fn pspc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pspc"))
        .args(args)
        .output()
        .expect("pspc runs")
}

fn write_kernel(name: &str, src: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("pspc-test-{name}-{}.psp", std::process::id()));
    std::fs::write(&path, src).unwrap();
    path
}

fn vecmin_file() -> PathBuf {
    write_kernel(
        "vecmin",
        "kernel vecmin(n, k, m; x[]) -> m {
            xk = x[k]; xm = x[m];
            if (xk < xm) { m = k; }
            k = k + 1;
            break if (k >= n);
        }",
    )
}

#[test]
fn compile_reports_paper_ii_and_emits_schedule_and_cfg() {
    let f = vecmin_file();
    let out = pspc(&["compile", f.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("II 2"), "paper Fig. 1c II:\n{text}");
    assert!(text.contains("== schedule"), "{text}");
    assert!(text.contains("== generated loop"), "{text}");
    assert!(text.contains("ops/cycle"), "{text}");
}

#[test]
fn compile_emit_dot_is_wellformed_graphviz() {
    let f = vecmin_file();
    let out = pspc(&["compile", f.to_str().unwrap(), "--emit", "dot"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("digraph"));
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert!(!text.contains("\\\\l"), "double-escaped line separators");
}

#[test]
fn run_executes_and_verifies() {
    let f = vecmin_file();
    let out = pspc(&["run", f.to_str().unwrap(), "--n", "64", "--seed", "7"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("executed 64 iterations"), "{text}");
    assert!(text.contains("verified"), "{text}");
    assert!(text.contains("m = "), "live-out printed:\n{text}");
}

#[test]
fn run_profile_measures_and_uses_branch_probabilities() {
    let f = vecmin_file();
    let out = pspc(&["run", f.to_str().unwrap(), "--n", "128", "--profile"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("measured branch profile"), "{text}");
    assert!(text.contains("verified"), "{text}");
}

#[test]
fn run_trace_shows_cycles_and_squashed_guards() {
    let f = vecmin_file();
    let out = pspc(&["run", f.to_str().unwrap(), "--n", "16", "--trace", "8"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("first 8 cycles"), "{text}");
    assert!(text.contains("pre "), "prologue cycles traced:\n{text}");
    assert!(text.contains("B0 "), "body cycles traced:\n{text}");
    assert!(text.contains("~~"), "guard-squashed ops marked:\n{text}");
    assert!(text.contains("verified"), "{text}");
}

#[test]
fn compare_runs_every_technique_and_psp_wins() {
    let f = vecmin_file();
    let out = pspc(&["compare", f.to_str().unwrap(), "--n", "256"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    for label in [
        "sequential",
        "local scheduling",
        "unroll x4",
        "EMS modulo",
        "PSP",
    ] {
        assert!(text.contains(label), "missing {label}:\n{text}");
    }
    assert!(text.contains("all compiled loops verified"), "{text}");
    // PSP's verified cycles/iter on the wide default machine is 2.00 —
    // strictly better than local scheduling's 3.00.
    let cpi = |label: &str| -> f64 {
        let line = text.lines().find(|l| l.starts_with(label)).unwrap();
        let fields: Vec<&str> = line.split_whitespace().collect();
        fields[fields.len() - 2].parse().unwrap()
    };
    assert!(cpi("PSP (this paper)") < cpi("local scheduling"), "{text}");
}

#[test]
fn machine_and_technique_flags_change_the_result() {
    let f = vecmin_file();
    let narrow = pspc(&[
        "compile",
        f.to_str().unwrap(),
        "--machine",
        "2,1,1",
        "--emit",
        "schedule",
    ]);
    assert!(narrow.status.success());
    let narrow = String::from_utf8(narrow.stdout).unwrap();
    assert!(narrow.contains("II 3"), "narrow machine II:\n{narrow}");

    let depth0 = pspc(&[
        "compile",
        f.to_str().unwrap(),
        "--depth",
        "0",
        "--emit",
        "schedule",
    ]);
    assert!(depth0.status.success());
    let depth0 = String::from_utf8(depth0.stdout).unwrap();
    assert!(
        depth0.contains("II 3"),
        "depth 0 = local scheduling:\n{depth0}"
    );
    assert!(depth0.contains("depth 0"), "{depth0}");
}

#[test]
fn kernels_lists_the_builtin_suite() {
    let out = pspc(&["kernels"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["vecmin", "cond_sum", "bubble_pass", "mac_cond"] {
        assert!(text.contains(name), "{text}");
    }
}

#[test]
fn errors_exit_nonzero_with_messages() {
    // Missing file.
    let out = pspc(&["compile", "/nonexistent-kernel.psp"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nonexistent"));

    // Parse error in the DSL.
    let bad = write_kernel("bad", "kernel broken(n; x[]) { v = x[ }");
    let out = pspc(&["compile", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    // Unknown scalar in --set.
    let f = vecmin_file();
    let out = pspc(&["run", f.to_str().unwrap(), "--set", "zzz=1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no such scalar"));

    // Unknown flag.
    let out = pspc(&["compile", f.to_str().unwrap(), "--bogus"]);
    assert!(!out.status.success());

    // Bad --machine shape.
    let out = pspc(&["compile", f.to_str().unwrap(), "--machine", "8,4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("ALU,MEM,BR"));
}

#[test]
fn set_controls_initial_registers() {
    // A threshold kernel where the count depends on `t`: with t above the
    // data range the count is 0; with t below it, the count is n.
    let f = write_kernel(
        "thr",
        "kernel thr(n, k, t, cnt; x[]) -> cnt {
            v = x[k];
            if (v > t) { cnt = cnt + 1; }
            k = k + 1;
            break if (k >= n);
        }",
    );
    for (t, expect) in [(1000, 0i64), (-1000, 32)] {
        let out = pspc(&[
            "run",
            f.to_str().unwrap(),
            "--n",
            "32",
            "--set",
            &format!("t={t}"),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains(&format!("cnt = {expect}")), "t={t}:\n{text}");
    }
}
