//! Repository-hygiene checks.
//!
//! A stray `src/crates/` tree once shipped inside `psp-kernels` (a debug
//! artifact from a mis-pasted path). Nothing referenced it, so the build
//! never noticed. This test walks every crate's `src/` and fails if such a
//! nested tree reappears; CI additionally greps for it.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the root `psp` package IS the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn walk(dir: &Path, hits: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "crates")
                && path
                    .parent()
                    .and_then(|p| p.file_name())
                    .is_some_and(|n| n == "src")
            {
                hits.push(path);
            } else {
                walk(&path, hits);
            }
        }
    }
}

#[test]
fn no_nested_src_crates_directories() {
    let root = workspace_root();
    let mut hits = Vec::new();
    walk(&root.join("src"), &mut hits);
    walk(&root.join("crates"), &mut hits);
    walk(&root.join("vendor"), &mut hits);
    assert!(
        hits.is_empty(),
        "stray src/crates/ trees (debug artifacts?): {hits:?}"
    );
}
