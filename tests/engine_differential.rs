//! Differential suite for the pre-decoded execution engine: every
//! observable the oracle compares — final registers, condition codes,
//! arrays, cycle counts, iteration counts, and the reference IF-outcome
//! trace — must be bit-identical between the `step_cycle`/`run_items`
//! interpreters (the trusted base) and the decoded engine.
//!
//! Coverage is three-layered:
//!
//! 1. all 16 paper kernels × both predicate backends × several compiled
//!    forms (PSP pipeline, local compaction, unrolled) through the full
//!    trace-materializing path (`check_equivalence_with`);
//! 2. the same kernels through the no-trace batch fast path
//!    (`EquivEngine::check`), which is the only path that engages the
//!    fused reference loop and the VLIW superloop — the counters it
//!    returns must equal the interpreter's run observables;
//! 3. a proptest over the psp-verify fuzz grammar (random nested-If
//!    bodies with breaks), so the decoded engine is exercised on loop
//!    shapes no hand-written kernel covers.

mod common;

use common::{arb_body, build_spec, initial, CASES};
use proptest::prelude::*;
use psp::predicate::backend::with_backend;
use psp::prelude::*;
use psp::sim::{check_equivalence_with, EquivEngine, MachineState};

const MAX_CYCLES: u64 = 10_000_000;

/// Run one trial through both engines' full (trace-materializing) paths
/// and demand field-for-field identical `RefRun`/`VliwRun` observables —
/// or the exact same error.
fn assert_full_identical(spec: &LoopSpec, prog: &VliwLoop, init: &MachineState, label: &str) {
    let interp = check_equivalence_with(spec, prog, init, MAX_CYCLES, EngineKind::Interpreter);
    let decoded = check_equivalence_with(spec, prog, init, MAX_CYCLES, EngineKind::Decoded);
    match (interp, decoded) {
        (Ok((ri, vi)), Ok((rd, vd))) => {
            assert_eq!(ri.state, rd.state, "[{label}] ref state diverged");
            assert_eq!(ri.cycles, rd.cycles, "[{label}] ref cycles diverged");
            assert_eq!(
                ri.iterations, rd.iterations,
                "[{label}] ref iterations diverged"
            );
            assert_eq!(ri.trace, rd.trace, "[{label}] ref trace diverged");
            assert_eq!(vi.state, vd.state, "[{label}] vliw state diverged");
            assert_eq!(
                vi.body_cycles, vd.body_cycles,
                "[{label}] vliw body cycles diverged"
            );
            assert_eq!(
                vi.total_cycles, vd.total_cycles,
                "[{label}] vliw total cycles diverged"
            );
            assert_eq!(
                vi.iterations, vd.iterations,
                "[{label}] vliw iterations diverged"
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(a.to_string(), b.to_string(), "[{label}] errors diverged");
        }
        (Ok(_), Err(e)) => panic!("[{label}] interpreter passed, decoded failed: {e}"),
        (Err(e), Ok(_)) => panic!("[{label}] decoded passed, interpreter failed: {e}"),
    }
}

/// Run one trial through the decoded engine's no-trace batch fast path
/// (the one the benchmark and the batched oracle use — it is the only
/// path that engages the fused reference loop and the VLIW superloop)
/// and demand its compact counters match the interpreter's runs.
fn assert_batch_path_identical(
    spec: &LoopSpec,
    prog: &VliwLoop,
    eng: &mut EquivEngine,
    init: &MachineState,
    label: &str,
) {
    let interp = check_equivalence_with(spec, prog, init, MAX_CYCLES, EngineKind::Interpreter);
    let fast = eng.check(init, MAX_CYCLES);
    match (interp, fast) {
        (Ok((ri, vi)), Ok(er)) => {
            assert_eq!(ri.cycles, er.ref_cycles, "[{label}] batch ref cycles");
            assert_eq!(
                ri.iterations, er.ref_iterations,
                "[{label}] batch ref iterations"
            );
            assert_eq!(
                vi.body_cycles, er.body_cycles,
                "[{label}] batch body cycles"
            );
            assert_eq!(
                vi.total_cycles, er.total_cycles,
                "[{label}] batch total cycles"
            );
            assert_eq!(
                vi.iterations, er.vliw_iterations,
                "[{label}] batch vliw iterations"
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                a.to_string(),
                b.to_string(),
                "[{label}] batch errors diverged"
            );
        }
        (Ok(_), Err(e)) => panic!("[{label}] interpreter passed, batch path failed: {e}"),
        (Err(e), Ok(_)) => panic!("[{label}] batch path passed, interpreter failed: {e}"),
    }
}

/// Trial inputs for the kernel sweeps: the small-trip-count ladder the
/// correctness suites use, plus one long input so the decoded engine's
/// steady-state loops (superloop / dispatch loop / fused reference) run
/// for thousands of iterations rather than bailing into the generic
/// paths after the pipeline drains.
fn kernel_trials() -> Vec<(u64, usize)> {
    let mut trials = EquivConfig::new(4, 11).trial_inputs();
    trials.push((17, 257));
    trials
}

/// All 16 kernels × both predicate backends, through the full
/// trace-materializing path, on the PSP-pipelined program.
#[test]
fn kernels_identical_across_engines_and_backends() {
    for kernel in all_kernels() {
        for packed in [false, true] {
            with_backend(packed, || {
                let res = pipeline_loop(&kernel.spec, &PspConfig::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
                for (seed, len) in kernel_trials() {
                    let data = KernelData::random(seed, len);
                    let init = kernel.initial_state(&data);
                    let label = format!(
                        "{}/{}/len={len}",
                        kernel.name,
                        if packed { "packed" } else { "sparse" }
                    );
                    assert_full_identical(&kernel.spec, &res.program, &init, &label);
                }
            });
        }
    }
}

/// The no-trace batch fast path (fused reference + VLIW superloop) over
/// all kernels: compact counters must equal the interpreter's.
#[test]
fn kernels_identical_on_batch_fast_path() {
    for kernel in all_kernels() {
        let res = pipeline_loop(&kernel.spec, &PspConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        let mut eng = EquivEngine::new(&kernel.spec, &res.program);
        for (seed, len) in kernel_trials() {
            let data = KernelData::random(seed, len);
            let init = kernel.initial_state(&data);
            let label = format!("{}/len={len}", kernel.name);
            assert_batch_path_identical(&kernel.spec, &res.program, &mut eng, &init, &label);
        }
    }
}

/// CFG variety beyond the pipelined programs: baseline compilers emit
/// different block shapes (sequential chains, locally compacted blocks,
/// unrolled multi-iteration bodies), exercising the decoded VLIW
/// engine's dispatch loop and snapshot/bail machinery.
#[test]
fn kernels_identical_across_compiled_forms() {
    let wide = MachineConfig::paper_default();
    for kernel in all_kernels() {
        let progs = [
            ("seq", compile_sequential(&kernel.spec)),
            ("local", compile_local(&kernel.spec, &wide)),
            ("unroll3", compile_unrolled(&kernel.spec, 3, &wide)),
        ];
        for (tech, prog) in &progs {
            let mut eng = EquivEngine::new(&kernel.spec, prog);
            for (seed, len) in EquivConfig::new(3, 23).trial_inputs() {
                let data = KernelData::random(seed, len);
                let init = kernel.initial_state(&data);
                let label = format!("{}/{tech}/len={len}", kernel.name);
                assert_full_identical(&kernel.spec, prog, &init, &label);
                assert_batch_path_identical(&kernel.spec, prog, &mut eng, &init, &label);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: CASES,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    /// Random loops from the psp-verify fuzz grammar: nested conditions,
    /// clobbered condition codes, store/load aliasing — shapes the fused
    /// reference builder must either handle bit-identically or decline.
    #[test]
    fn fuzz_grammar_identical_across_engines(body in arb_body(), packed in any::<bool>()) {
        let spec = build_spec(&body);
        let Ok(res) = with_backend(packed, || pipeline_loop(&spec, &PspConfig::default())) else {
            return Ok(());
        };
        let mut eng = EquivEngine::new(&spec, &res.program);
        for (seed, len) in EquivConfig::new(3, 29).trial_inputs() {
            let init = initial(&spec, len, seed);
            assert_full_identical(&spec, &res.program, &init, "fuzz");
            assert_batch_path_identical(&spec, &res.program, &mut eng, &init, "fuzz");
        }
    }
}
