//! The paper's concrete artifacts as executable assertions — the canonical
//! record behind EXPERIMENTS.md.

use psp::core::transform::{moveup, wrap_up};
use psp::machine::VliwTerm;
use psp::prelude::*;

/// Figure 1(a): sequential II is 7 and 8 cycles for the two paths.
#[test]
fn fig1a_sequential_ii_7_and_8() {
    let kernel = by_name("vecmin").unwrap();
    let prog = compile_sequential(&kernel.spec);
    assert_eq!(prog.ii_range(), Some((7, 8)));
}

/// Figure 1(b): local scheduling with renaming reaches II = 3.
#[test]
fn fig1b_local_ii_3() {
    let kernel = by_name("vecmin").unwrap();
    let prog = compile_local(&kernel.spec, &MachineConfig::paper_default());
    assert_eq!(prog.ii_range(), Some((3, 3)));
}

/// Figure 1(c): software pipelining reaches II = 2.
#[test]
fn fig1c_psp_ii_2() {
    let kernel = by_name("vecmin").unwrap();
    let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
    assert_eq!(res.program.ii_range(), Some((2, 2)));
    // And the pipelined loop is dynamically 3.5x the sequential machine.
    let data = KernelData::random(1, 400);
    let init = kernel.initial_state(&data);
    let (gold, run) = check_equivalence(&kernel.spec, &res.program, &init, 1_000_000).unwrap();
    let speedup = gold.cycles as f64 / run.body_cycles as f64;
    assert!(speedup > 3.4, "speedup {speedup}");
}

/// Figure 2: wrapping the first four operations produces the paper's
/// 7-cycle schedule with indices (0,0,0,0,1+1,1,1).
#[test]
fn fig2_schedule_shape() {
    let kernel = by_name("vecmin").unwrap();
    let machine = MachineConfig::paper_default();
    let mut sched = Schedule::initial(&kernel.spec);
    for _ in 0..4 {
        let id = sched.rows[0][0].id;
        wrap_up(&mut sched, id, &machine).unwrap();
        sched.prune_empty_rows();
    }
    let row = sched
        .rows
        .iter()
        .position(|r| r.iter().any(|i| i.index == 1))
        .unwrap();
    let id = sched.rows[row + 1][0].id;
    moveup(&mut sched, id, row, &machine).unwrap();
    sched.prune_empty_rows();

    assert_eq!(sched.n_rows(), 7);
    let indices: Vec<Vec<i32>> = sched
        .rows
        .iter()
        .map(|r| r.iter().map(|i| i.index).collect())
        .collect();
    assert_eq!(
        indices,
        vec![
            vec![0],
            vec![0],
            vec![0],
            vec![0],
            vec![1, 1],
            vec![1],
            vec![1]
        ]
    );
    // The COPY keeps its formal matrix [1] at column 0 while the wrapped
    // IF computes p(+1): speculation-free cross-iteration control.
    assert_eq!(sched.rows[0][0].formal, PredicateMatrix::single(0, 0, true));
    let log = sched.iflog();
    assert!(log.available_before(0, 0, 0), "p(0) known at loop entry");
}

/// Figure 3: code generation reconstructs two blocks [0 b] and [1 b], the
/// COPY lives only in [1 b], blocks end with the IF, and back edges follow
/// the superset-of-left-shifted-matrix rule.
#[test]
fn fig3_codegen_structure() {
    let kernel = by_name("vecmin").unwrap();
    let machine = MachineConfig::paper_default();
    let mut sched = Schedule::initial(&kernel.spec);
    for _ in 0..4 {
        let id = sched.rows[0][0].id;
        wrap_up(&mut sched, id, &machine).unwrap();
        sched.prune_empty_rows();
    }
    let prog = generate(&sched, &machine).unwrap();

    let entries = prog.steady_entries();
    assert_eq!(entries.len(), 2);
    let m0 = PredicateMatrix::single(0, 0, false);
    let m1 = PredicateMatrix::single(0, 0, true);
    let b1 = entries
        .iter()
        .copied()
        .find(|&b| prog.blocks[b].matrix == m1)
        .unwrap();
    let b0 = entries
        .iter()
        .copied()
        .find(|&b| prog.blocks[b].matrix == m0)
        .unwrap();
    let has_copy = |b: usize| {
        prog.blocks[b]
            .cycles
            .iter()
            .flatten()
            .any(|op| matches!(op.kind, psp::ir::OpKind::Copy { .. }))
    };
    assert!(has_copy(b1) && !has_copy(b0));
    for &b in &[b0, b1] {
        match prog.blocks[b].term {
            VliwTerm::Branch {
                on_true, on_false, ..
            } => {
                assert!(on_true.back_edge && on_false.back_edge);
            }
            _ => panic!("Figure 3 blocks end in branches"),
        }
    }
    // Preloop = the operations "pushed into the previous iteration".
    assert!(!prog.prologue.is_empty());
    // And the whole construction executes correctly.
    let data = KernelData::random(9, 100);
    let init = kernel.initial_state(&data);
    let (_, run) = check_equivalence(&kernel.spec, &prog, &init, 1_000_000).unwrap();
    kernel.check(&run.state, &data).unwrap();
}

/// §2's initial assignment: every operation [b] except the COPY with [1].
#[test]
fn section2_initial_assignment() {
    let kernel = by_name("vecmin").unwrap();
    let sched = Schedule::initial(&kernel.spec);
    let constrained: Vec<_> = sched
        .instances()
        .filter(|i| !i.formal.is_universe())
        .collect();
    assert_eq!(constrained.len(), 1);
    assert!(matches!(
        constrained[0].op.kind,
        psp::ir::OpKind::Copy { .. }
    ));
    assert_eq!(constrained[0].formal, PredicateMatrix::single(0, 0, true));
}

/// §2's speculative example: two matrices [1 b] ∪ [0 1] describe an actual
/// path set that strictly contains the formal set [b 1].
#[test]
fn section2_actual_vs_formal_paths() {
    let formal = PathSet::from_matrix(PredicateMatrix::single(0, 0, true));
    let actual = PathSet::from_matrices([
        PredicateMatrix::single(0, -1, true),
        PredicateMatrix::from_entries([(0, -1, false), (0, 0, true)]),
    ]);
    assert!(actual.subsumes(&formal));
    assert!(!formal.subsumes(&actual));
}

/// Deep pipelining: with the reaching-definition preloop, guarded
/// reductions retire one original iteration per cycle (II = 1) at depth
/// 2–3 on the wide machine — the limit case of the technique.
#[test]
fn deep_pipelining_reaches_ii_1() {
    for (name, max_ii) in [
        ("cond_sum", 1),
        ("sign_store", 1),
        ("dot_cond", 1),
        ("mac_cond", 1),
        ("threshold_store", 1),
        ("two_cond", 2),
        ("bubble_pass", 2),
    ] {
        let kernel = by_name(name).unwrap();
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        let (_, got) = res.program.ii_range().unwrap();
        assert!(got <= max_ii, "{name}: II {got} > {max_ii}");
        // And, as everywhere, only verified code counts.
        for len in [1usize, 2, 5, 40] {
            let data = KernelData::random(21, len);
            let init = kernel.initial_state(&data);
            let (_, run) =
                check_equivalence(&kernel.spec, &res.program, &init, 10_000_000).unwrap();
            kernel.check(&run.state, &data).unwrap();
        }
    }
}
