//! Round-trip properties tying the DSL front end, the pretty-printer, and
//! the fuzz grammar together:
//!
//! * rendering any grammar statement list to source and compiling it
//!   yields *exactly* the spec the programmatic builder produces — the
//!   contract that makes on-disk `.psp` reproducers faithful;
//! * parse → print → re-parse is the identity on the AST, over the whole
//!   generated source space (not just the handwritten cases in
//!   `psp-lang`'s unit tests).

mod common;

use common::*;
use proptest::prelude::*;
use psp::lang;
use psp::verify::grammar as vg;

/// The proptest grammar (`tests/common`) and the fuzzer's self-contained
/// grammar (`psp-verify`) share field-for-field statement encodings.
fn conv(stmts: &[S]) -> Vec<vg::S> {
    stmts
        .iter()
        .map(|s| match s {
            S::Alu(op, d, a, b) => vg::S::Alu(*op, *d, *a, *b),
            S::LoadX(d) => vg::S::LoadX(*d),
            S::LoadY(d) => vg::S::LoadY(*d),
            S::AccAdd(src) => vg::S::AccAdd(*src),
            S::StoreY(src) => vg::S::StoreY(*src),
            S::If(c, a, b, t, e) => vg::S::If(*c, *a, *b, conv(t), conv(e)),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: CASES,
        ..ProptestConfig::default()
    })]

    #[test]
    fn rendered_source_lowers_to_the_built_spec(body in arb_body()) {
        let direct = build_spec(&body);
        let src = vg::to_source(&conv(&body));
        let compiled = lang::compile(&src)
            .unwrap_or_else(|e| panic!("render does not compile: {e}\n{src}"));
        prop_assert_eq!(direct, compiled);
    }

    #[test]
    fn parse_print_reparse_is_identity(body in arb_body()) {
        let src = vg::to_source(&conv(&body));
        let k1 = lang::parse(&lang::lex(&src).unwrap()).unwrap();
        let printed = lang::print_kernel(&k1);
        let k2 = lang::parse(&lang::lex(&printed).unwrap())
            .unwrap_or_else(|e| panic!("printed source does not re-parse: {e}\n{printed}"));
        prop_assert_eq!(k1, k2);
    }
}

/// Negative immediates sit after `min`/`max` keywords only in parenthesized
/// form; pin the corner explicitly (caught live by the fuzzer's grammar).
#[test]
fn negative_literal_after_min_keyword() {
    // Operand code 35 decodes to an immediate (35 % 6 == 5) with value
    // 35 % 7 - 3 = -3.
    let body = vec![S::Alu(3 /* Min */, 0, 0, 35)];
    let direct = build_spec(&body);
    let src = vg::to_source(&conv(&body));
    assert!(src.contains("min (-3)"), "rendering: {src}");
    assert_eq!(lang::compile(&src).unwrap(), direct);
}

/// A reproducer file round-trips through disk with its comment header.
#[test]
fn repro_file_with_comments_compiles() {
    let body = vec![
        S::LoadX(0),
        S::AccAdd(2),
        S::If(0, 0, 1, vec![S::StoreY(1)], vec![]),
    ];
    let stmts = conv(&body);
    let src = format!(
        "// stage: none\n// detail: sample\n{}",
        vg::to_source(&stmts)
    );
    assert_eq!(lang::compile(&src).unwrap(), build_spec(&body));
}
