//! Differential fuzzing: generate random loops with conditions, compile
//! them with every technique, and check observational equivalence against
//! the reference interpreter on multiple inputs.
//!
//! This is the strongest correctness argument in the suite: the PSP
//! scheduler's transformations (speculation, renaming, combining,
//! substitution, splitting, wrapping) must preserve semantics on loop
//! shapes nobody hand-picked. The loop generator is shared with the exact-
//! certifier property suite (`tests/common/mod.rs`).

mod common;

use common::*;
use proptest::prelude::*;
use psp::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: CASES,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_loops_all_techniques_equivalent(body in arb_body()) {
        let spec = build_spec(&body);
        prop_assert!(spec.validate().is_ok(), "generator produced invalid spec");

        let wide = MachineConfig::paper_default();
        check_prog(&spec, &compile_sequential(&spec), "seq");
        check_prog(&spec, &compile_local(&spec, &wide), "local");
        check_prog(&spec, &compile_unrolled(&spec, 3, &wide), "unroll3");
        let res = pipeline_loop(&spec, &PspConfig::default()).expect("psp pipelines");
        check_prog(&spec, &res.program, "psp");
    }

    #[test]
    fn random_loops_narrow_machine(body in arb_body()) {
        let spec = build_spec(&body);
        let narrow = MachineConfig::narrow(2, 1, 1);
        check_prog(&spec, &compile_local(&spec, &narrow), "local-narrow");
        let res = pipeline_loop(&spec, &PspConfig::with_machine(narrow))
            .expect("psp pipelines");
        check_prog(&spec, &res.program, "psp-narrow");
    }
}

/// The shrunk counterexample recorded in `fuzz_random_loops.proptest-regressions`
/// (nested IFs whose inner predicate feeds a conditional accumulation),
/// pinned as an explicit test so the case survives even when the proptest
/// runner does not replay the regressions file.
#[test]
fn regression_nested_if_conditional_accumulate() {
    let body = vec![
        S::If(0, 98, 117, vec![S::LoadX(2)], vec![]),
        S::If(
            3,
            0,
            135,
            vec![S::If(2, 0, 1, vec![S::Alu(1, 0, 19, 53)], vec![])],
            vec![],
        ),
        S::If(
            0,
            41,
            132,
            vec![S::Alu(0, 1, 82, 51), S::AccAdd(152)],
            vec![],
        ),
    ];
    let spec = build_spec(&body);
    assert!(spec.validate().is_ok());
    let wide = MachineConfig::paper_default();
    check_prog(&spec, &compile_sequential(&spec), "seq");
    check_prog(&spec, &compile_local(&spec, &wide), "local");
    check_prog(&spec, &compile_unrolled(&spec, 3, &wide), "unroll3");
    let res = pipeline_loop(&spec, &PspConfig::default()).expect("psp pipelines");
    check_prog(&spec, &res.program, "psp");
    let narrow = MachineConfig::narrow(2, 1, 1);
    let res = pipeline_loop(&spec, &PspConfig::with_machine(narrow)).expect("psp pipelines");
    check_prog(&spec, &res.program, "psp-narrow");
}
