//! Golden-file snapshots of the generated VLIW code for every kernel.
//!
//! The differential simulator proves the code *correct*; these snapshots
//! pin it *stable*: any change to scheduling heuristics, code generation,
//! or block layout shows up as a reviewable diff under `tests/golden/`
//! instead of silently shifting IIs. Regenerate intentionally with:
//!
//! ```text
//! PSP_UPDATE_GOLDEN=1 cargo test --test golden_vliw
//! ```

use psp::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Render one kernel's compiled artifact: a header with the score facts a
/// reviewer cares about (II range, block count), then the program listing.
fn render(kernel: &Kernel) -> String {
    let res = pipeline_loop(&kernel.spec, &PspConfig::default()).expect("psp pipelines");
    let mut out = String::new();
    let _ = writeln!(out, "# kernel: {}", kernel.name);
    if let Some((lo, hi)) = res.program.ii_range() {
        let _ = writeln!(out, "# ii: {lo}..{hi}");
    }
    let _ = writeln!(
        out,
        "# blocks: {}  rows: {}",
        res.program.blocks.len(),
        res.schedule.n_rows()
    );
    let _ = writeln!(out);
    let _ = write!(out, "{}", res.program);
    out
}

#[test]
fn generated_code_matches_golden_snapshots() {
    let update = std::env::var_os("PSP_UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut failures = Vec::new();
    for kernel in all_kernels() {
        let got = render(&kernel);
        let path = dir.join(format!("{}.txt", kernel.name));
        if update {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == got => {}
            Ok(want) => failures.push(format!(
                "{}: snapshot differs\n--- want ({})\n{want}\n--- got\n{got}",
                kernel.name,
                path.display()
            )),
            Err(_) => failures.push(format!(
                "{}: missing snapshot {} (run with PSP_UPDATE_GOLDEN=1 to create)",
                kernel.name,
                path.display()
            )),
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

/// The snapshot directory contains no strays: every file corresponds to a
/// kernel (catches renamed kernels leaving dead goldens behind).
#[test]
fn golden_directory_matches_kernel_suite() {
    let dir = golden_dir();
    if !dir.exists() {
        return; // first run before snapshots exist
    }
    let names: Vec<String> = all_kernels()
        .iter()
        .map(|k| format!("{}.txt", k.name))
        .collect();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let f = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            names.contains(&f),
            "stray golden file {f}: no kernel by that name"
        );
    }
}
