//! Shared random-loop generator for the differential fuzz suites
//! (`fuzz_random_loops`, `fuzz_exact_certifier`): proptest strategies
//! producing arbitrary loops with (nested) conditions over the fixed
//! register universe R0=n, R1=k, R2=acc, R3..=scratch, plus the input
//! builder and the multi-input equivalence checker.
#![allow(dead_code)] // each integration-test binary uses a subset

use proptest::prelude::*;
use psp::ir::op::build;
use psp::ir::{AluOp, CmpOp, LoopBuilder, LoopSpec, Operand, Reg};
use psp::prelude::*;
use psp::sim::MachineState;

/// Register universe of a generated loop: R0=n, R1=k, R2=acc, R3..=scratch.
pub const N: Reg = Reg(0);
pub const K: Reg = Reg(1);
pub const ACC: Reg = Reg(2);
pub const SCRATCH: u32 = 3;
pub const N_SCRATCH: u32 = 3;

#[derive(Debug, Clone)]
pub enum S {
    Alu(u8, u8, u8, u8),            // op, dst(scratch), a(operand), b(operand)
    LoadX(u8),                      // dst(scratch)
    LoadY(u8),                      // dst(scratch)
    AccAdd(u8),                     // operand
    StoreY(u8),                     // operand
    If(u8, u8, u8, Vec<S>, Vec<S>), // cmp, a, b, then, else
}

pub fn arb_stmt(depth: u32) -> impl Strategy<Value = S> {
    let leaf = prop_oneof![
        (0..8u8, 0..N_SCRATCH as u8, any::<u8>(), any::<u8>())
            .prop_map(|(op, d, a, b)| S::Alu(op, d, a, b)),
        (0..N_SCRATCH as u8).prop_map(S::LoadX),
        (0..N_SCRATCH as u8).prop_map(S::LoadY),
        any::<u8>().prop_map(S::AccAdd),
        any::<u8>().prop_map(S::StoreY),
    ];
    leaf.prop_recursive(depth, 8, 3, |inner| {
        (
            0..6u8,
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(inner.clone(), 1..3),
            proptest::collection::vec(inner, 0..2),
        )
            .prop_map(|(c, a, b, t, e)| S::If(c, a, b, t, e))
    })
}

pub fn arb_body() -> impl Strategy<Value = Vec<S>> {
    proptest::collection::vec(arb_stmt(2), 2..7)
}

pub fn operand(code: u8) -> Operand {
    match code % 6 {
        0 => Operand::Reg(K),
        1 => Operand::Reg(ACC),
        2 => Operand::Reg(Reg(SCRATCH)),
        3 => Operand::Reg(Reg(SCRATCH + 1)),
        4 => Operand::Reg(Reg(SCRATCH + 2)),
        _ => Operand::Imm((code as i64 % 7) - 3),
    }
}

pub fn alu(code: u8) -> AluOp {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Min,
        AluOp::Max,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
    ][code as usize % 8]
}

pub fn cmp(code: u8) -> CmpOp {
    [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ][code as usize % 6]
}

pub fn emit(b: &mut LoopBuilder, stmts: &[S], x: psp::ir::ArrayId, y: psp::ir::ArrayId) {
    for s in stmts {
        match s {
            S::Alu(op, d, a2, b2) => {
                let dst = Reg(SCRATCH + (*d as u32 % N_SCRATCH));
                b.op(build::alu(alu(*op), dst, operand(*a2), operand(*b2)));
            }
            S::LoadX(d) => {
                let dst = Reg(SCRATCH + (*d as u32 % N_SCRATCH));
                b.op(build::load(dst, x, K));
            }
            S::LoadY(d) => {
                let dst = Reg(SCRATCH + (*d as u32 % N_SCRATCH));
                b.op(build::load(dst, y, K));
            }
            S::AccAdd(src) => {
                b.op(build::add(ACC, ACC, operand(*src)));
            }
            S::StoreY(src) => {
                b.op(build::store(y, K, operand(*src)));
            }
            S::If(c, a2, b2, t, e) => {
                let cc = b.cc();
                b.op(build::cmp(cmp(*c), cc, operand(*a2), operand(*b2)));
                b.begin_if(cc);
                emit(b, t, x, y);
                b.begin_else();
                emit(b, e, x, y);
                b.end_if();
            }
        }
    }
}

pub fn build_spec(stmts: &[S]) -> LoopSpec {
    let mut b = LoopBuilder::new("fuzz");
    let x = b.array("x");
    let y = b.array("y");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let acc = b.named_reg("acc");
    let s0 = b.named_reg("s0");
    let s1 = b.named_reg("s1");
    let s2 = b.named_reg("s2");
    assert_eq!((n, k, acc), (N, K, ACC));
    emit(&mut b, stmts, x, y);
    b.op(build::add(K, K, 1i64));
    let ccb = b.cc();
    b.op(build::cmp(CmpOp::Ge, ccb, K, N));
    b.break_(ccb);
    b.finish([n, k, acc, s0, s1, s2], [acc])
}

pub fn initial(spec: &LoopSpec, len: usize, seed: u64) -> MachineState {
    let data = KernelData::random(seed, len);
    let mut st = MachineState::new(spec.n_regs.max(8), spec.n_ccs.max(4));
    st.regs[N.0 as usize] = len as i64;
    st.push_array(data.x);
    st.push_array(data.y);
    st
}

pub fn check_prog(spec: &LoopSpec, prog: &VliwLoop, label: &str) {
    for (seed, len) in psp::sim::EquivConfig::new(4, 10).trial_inputs() {
        let init = initial(spec, len, seed);
        let (_, _) = check_equivalence(spec, prog, &init, 10_000_000)
            .unwrap_or_else(|e| panic!("[{label}] len {len}: {e}\nspec:\n{spec}\n{prog}"));
    }
}

/// Keep debug-profile runs quick; release runs fuzz harder. Override with
/// the PROPTEST_CASES environment variable for long campaigns.
pub const CASES: u32 = if cfg!(debug_assertions) { 6 } else { 48 };
